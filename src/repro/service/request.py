"""Requests and their life-cycle records.

A :class:`ServiceRequest` is one tenant's ask: "schedule and simulate
hot spot X of my workload, answer by tick D".  Streams are generated
*up front* from per-tenant seeded generators — the arrival pattern is a
pure function of the fleet and the service seed, never of execution
interleaving, which is what makes two soak runs bit-identical.

The mutable :class:`RequestRecord` tracks one admitted request through
the arbiter: queued → running → done, with preemption count, backoff
gate and the delivered answer's digest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .tenant import TenantSpec

__all__ = ["ServiceRequest", "RequestRecord", "generate_requests"]


@dataclass(frozen=True)
class ServiceRequest:
    """One immutable tenant request."""

    tenant: str
    request_id: str
    hot_spot: str
    #: Workload-variant index (seed offset) — the cache-identity knob.
    variant: int
    arrival: int
    deadline: int
    lease_acs: int
    #: Denormalised :attr:`TenantSpec.priority_rank` for arbitration keys.
    priority: int
    #: Global arrival sequence number — the deterministic tie-breaker.
    seq: int


@dataclass
class RequestRecord:
    """Mutable life-cycle state of one *admitted* request.

    ``epoch`` increments every time the request is (re-)dispatched; a
    completion event carries the epoch it was scheduled under, so a
    preempted dispatch's stale completion is recognised and ignored.
    """

    request: ServiceRequest
    #: ``queued`` | ``running`` | ``done``.
    status: str = "queued"
    #: False for admission-free cache hits (no ledger charge to refund).
    admitted: bool = True
    #: Position in the arbiter's record table (set when registered).
    index: int = -1
    #: Estimated fabric service time (ticks) at admission.
    est_ticks: int = 0
    #: Earliest tick the request may be (re-)dispatched.
    not_before: int = 0
    preemptions: int = 0
    epoch: int = 0
    started: int = -1
    completed: int = -1
    degraded: bool = False
    cache_hit: bool = False
    #: Whether the current dispatch holds a fabric lease.
    holds_lease: bool = False
    service_ticks: int = 0
    #: Short content digest of the delivered result payload.
    digest: str = ""
    #: Degradation reason when served by the software path.
    degrade_reason: str = field(default="")


def generate_requests(
    tenants: Sequence[TenantSpec], duration: int, seed: int
) -> Tuple[ServiceRequest, ...]:
    """The full deterministic request stream of one service run.

    Each tenant gets its own generator seeded from ``seed`` and the
    tenant *name* (not its fleet position), so adding a tenant never
    perturbs the other tenants' streams.  Arrival gaps are uniform in
    ``[mean_gap/2, 3*mean_gap/2]``; the merged stream is ordered by
    ``(arrival, tenant, per-tenant counter)`` and numbered globally.
    """
    raw: List[Tuple[int, str, int, str, int, int, int]] = []
    for tenant in tenants:
        rng = random.Random(f"{seed}:{tenant.name}")
        low = max(1, tenant.mean_gap // 2)
        high = max(low, tenant.mean_gap * 3 // 2)
        tick = low + rng.randrange(high - low + 1)
        counter = 0
        while tick < duration:
            hot_spot = tenant.hot_spots[
                rng.randrange(len(tenant.hot_spots))
            ]
            variant = rng.randrange(tenant.variants)
            raw.append(
                (
                    tick,
                    tenant.name,
                    counter,
                    hot_spot,
                    variant,
                    tick + tenant.deadline_slack,
                    tenant.lease_acs,
                )
            )
            counter += 1
            tick += low + rng.randrange(high - low + 1)
    raw.sort(key=lambda item: (item[0], item[1], item[2]))
    ranks = {tenant.name: tenant.priority_rank for tenant in tenants}
    requests: List[ServiceRequest] = []
    for seq, item in enumerate(raw):
        arrival, name, counter, hot_spot, variant, deadline, lease = item
        requests.append(
            ServiceRequest(
                tenant=name,
                request_id=f"{name}-r{counter:04d}",
                hot_spot=hot_spot,
                variant=variant,
                arrival=arrival,
                deadline=deadline,
                lease_acs=lease,
                priority=ranks[name],
                seq=seq,
            )
        )
    return tuple(requests)
