"""Tenant specifications for the multi-tenant fabric service.

A tenant is one independent application competing for the shared
reconfigurable fabric: its own :class:`~repro.exec.spec.WorkloadSpec`
(the SI library is shared — every tenant runs the paper's H.264 SIs,
differing in workload seed, scheduler and hot-spot mix), a priority
class, and the admission-control knobs the arbiter enforces per tenant
(AC lease size, atom budget, in-flight cap, token-bucket rate limit).

All specs are frozen and validated at construction: a malformed fleet
fails fast with :class:`~repro.errors.ServiceError` instead of
producing a silently-wrong soak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import ServiceError
from ..exec.spec import WorkloadSpec
from ..h264.silibrary import HOT_SPOT_ORDER

__all__ = ["PRIORITY_CLASSES", "TenantSpec", "make_tenant_fleet"]

#: Priority classes, lowest first: the index is the arbitration rank.
#: ``critical`` tenants may preempt ``standard`` and ``batch`` leases;
#: ``batch`` preempts nobody.
PRIORITY_CLASSES: Tuple[str, ...] = ("batch", "standard", "critical")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fabric arbitration service.

    Parameters
    ----------
    name:
        Unique tenant identifier (tags every event and journal line).
    workload:
        The tenant's workload generator spec; the arbiter derives one
        small single-hot-spot cell per request from it.
    scheduler:
        Atom-scheduler name used for the tenant's fabric plans.
    priority:
        One of :data:`PRIORITY_CLASSES`.
    lease_acs:
        Atom Containers leased from the shared fabric per dispatched
        request.  Zero means a cISA-only tenant (always served by the
        software path).
    atom_budget:
        Upper bound on the tenant's concurrently committed lease ACs
        (queued + running); admission sheds ``atom_budget`` beyond it.
    max_in_flight:
        Upper bound on admitted-but-unfinished requests.
    rate_interval:
        Token-bucket refill period in virtual ticks (one token each).
    burst:
        Token-bucket capacity.
    mean_gap:
        Mean inter-arrival gap of the tenant's request stream (ticks).
    deadline_slack:
        Deadline offset: a request arriving at ``t`` must complete by
        ``t + deadline_slack`` to be worth admitting.
    hot_spots:
        The hot spots the tenant requests, chosen per request by the
        seeded stream generator.
    variants:
        Distinct workload variants (seed offsets) the tenant's requests
        cycle over.  Small values make repeats — and thus
        content-addressed cache hits — common; large values make most
        requests fresh compute.
    """

    name: str
    workload: WorkloadSpec
    scheduler: str = "HEF"
    priority: str = "standard"
    lease_acs: int = 2
    atom_budget: int = 6
    max_in_flight: int = 4
    rate_interval: int = 60
    burst: int = 4
    mean_gap: int = 160
    deadline_slack: int = 600
    hot_spots: Tuple[str, ...] = field(default=HOT_SPOT_ORDER)
    variants: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("tenant name must be non-empty")
        if self.priority not in PRIORITY_CLASSES:
            raise ServiceError(
                f"tenant {self.name!r}: unknown priority "
                f"{self.priority!r}; known: {list(PRIORITY_CLASSES)}"
            )
        if self.lease_acs < 0:
            raise ServiceError(
                f"tenant {self.name!r}: negative lease_acs "
                f"{self.lease_acs}"
            )
        if self.atom_budget < self.lease_acs:
            raise ServiceError(
                f"tenant {self.name!r}: atom_budget {self.atom_budget} "
                f"below lease_acs {self.lease_acs} — no request could "
                f"ever be admitted"
            )
        if self.max_in_flight < 1:
            raise ServiceError(
                f"tenant {self.name!r}: max_in_flight must be >= 1"
            )
        if self.rate_interval < 1 or self.burst < 1:
            raise ServiceError(
                f"tenant {self.name!r}: token bucket needs "
                f"rate_interval >= 1 and burst >= 1"
            )
        if self.mean_gap < 1:
            raise ServiceError(
                f"tenant {self.name!r}: mean_gap must be >= 1"
            )
        if self.deadline_slack < 1:
            raise ServiceError(
                f"tenant {self.name!r}: deadline_slack must be >= 1"
            )
        if not self.hot_spots:
            raise ServiceError(
                f"tenant {self.name!r}: hot_spots must be non-empty"
            )
        if self.variants < 1:
            raise ServiceError(
                f"tenant {self.name!r}: variants must be >= 1"
            )

    @property
    def priority_rank(self) -> int:
        """Numeric arbitration rank (higher preempts lower)."""
        return PRIORITY_CLASSES.index(self.priority)


def make_tenant_fleet(
    num_tenants: int,
    seed: int = 2008,
    mean_gap: int = 160,
    deadline_slack: int = 600,
    frames: int = 1,
    max_traces: int = 2,
    variants: int = 4,
) -> Tuple[TenantSpec, ...]:
    """A deterministic synthetic fleet for soaks and the ``serve`` CLI.

    Priorities and schedulers rotate so the fleet always mixes classes;
    per-tenant gaps are jittered by a generator seeded from ``seed``, so
    the same arguments always produce the identical fleet.
    """
    if num_tenants < 1:
        raise ServiceError(f"fleet needs >= 1 tenant, got {num_tenants}")
    rng = random.Random(seed)
    priorities = ("critical", "standard", "standard", "batch")
    schedulers = ("HEF", "SJF", "ASF")
    fleet: List[TenantSpec] = []
    for index in range(num_tenants):
        gap = mean_gap + rng.randrange(max(1, mean_gap // 2))
        tenant = TenantSpec(
            name=f"tenant{index:02d}",
            workload=WorkloadSpec(
                frames=frames, seed=seed + index, max_traces=max_traces
            ),
            scheduler=schedulers[index % len(schedulers)],
            priority=priorities[index % len(priorities)],
            lease_acs=2 + index % 2,
            atom_budget=6,
            max_in_flight=4,
            rate_interval=max(1, gap // 3),
            burst=4,
            mean_gap=gap,
            deadline_slack=deadline_slack,
            variants=variants,
        )
        fleet.append(tenant)
    return tuple(fleet)
