"""Versioned, salted, atomically-written arbiter snapshots.

A snapshot is the arbiter's complete mutable state at one virtual tick
— event heap, request table, per-tenant ledgers and stats, breaker,
RNG, answer memo, fabric shape — plus an *anchor* into the service
journal: the byte length of the journal prefix written so far and the
SHA-256 of exactly those bytes.  Recovery restores the newest snapshot
whose anchor still matches the on-disk journal and re-executes from
there, verifying every regenerated line against the journal tail.

Snapshots are **sidecar** files under ``<journal>.snap/`` — they never
appear in the journal itself, so journal digests are independent of the
snapshot cadence.  Each file is published atomically
(:func:`repro._atomic.atomic_write_text`), so a crash mid-snapshot
leaves at worst a stale-but-valid predecessor; corrupt, foreign-salt or
anchor-mismatched snapshots are skipped, degrading (ultimately) to full
journal replay from tick 0.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .._atomic import atomic_write_text
from ..exec.cache import canonical_json
from .control import ControlEvent
from .tenant import TenantSpec

__all__ = [
    "SNAPSHOT_FORMAT",
    "config_fingerprint",
    "snapshot_dir",
    "write_snapshot",
    "load_latest_snapshot",
    "list_snapshots",
]

#: Snapshot schema version; a bump orphans every older snapshot (they
#: then read as invalid and recovery falls back to full replay).
SNAPSHOT_FORMAT = 1

#: Newest snapshots kept per journal; older ones are pruned on write.
_SNAPSHOT_KEEP = 3


def config_fingerprint(
    tenants: Sequence[TenantSpec],
    config: Any,
    control_events: Sequence[ControlEvent] = (),
) -> str:
    """SHA-256 identity of one service run's *inputs*.

    Covers the initial fleet, the :class:`ServiceConfig` and the control
    schedule — everything the deterministic timeline is a function of,
    *except* ``snapshot_every``: the snapshot cadence is operational
    (it changes what is on disk, never what the run computes), so a
    recovery may use a different cadence than the crashed run.
    """
    cfg = dataclasses.asdict(config)
    cfg.pop("snapshot_every", None)
    doc = {
        "tenants": [
            dataclasses.asdict(tenant)
            for tenant in sorted(tenants, key=lambda t: t.name)
        ],
        "config": cfg,
        "control": [event.to_json_dict() for event in control_events],
    }
    digest = hashlib.sha256(canonical_json(doc).encode("ascii"))
    return digest.hexdigest()


def snapshot_dir(journal_path: Union[str, Path]) -> Path:
    """The sidecar snapshot directory of one journal."""
    return Path(str(journal_path) + ".snap")


def _snapshot_path(directory: Path, tick: int) -> Path:
    return directory / f"snap-{tick:012d}.json"


def write_snapshot(
    journal_path: Union[str, Path],
    state: Dict[str, Any],
    *,
    fsync: bool = False,
) -> Path:
    """Atomically publish one snapshot; prunes to the newest few.

    ``state`` must carry the envelope keys ``format``, ``salt``,
    ``fingerprint``, ``tick``, ``journal_offset`` and ``journal_sha``
    (the arbiter's ``_capture_state`` does); everything else is opaque
    to this module.
    """
    directory = snapshot_dir(journal_path)
    directory.mkdir(parents=True, exist_ok=True)
    path = _snapshot_path(directory, int(state["tick"]))
    atomic_write_text(
        path, canonical_json(state), fsync=fsync, suffix=".json"
    )
    kept = sorted(directory.glob("snap-*.json"))
    for stale in kept[:-_SNAPSHOT_KEEP]:
        stale.unlink(missing_ok=True)
    return path


def load_latest_snapshot(
    journal_path: Union[str, Path],
    *,
    salt: str,
    fingerprint: str,
    journal_bytes: bytes,
) -> Optional[Dict[str, Any]]:
    """The newest snapshot that still matches the on-disk journal.

    Candidates are tried newest-first; each must parse, carry the
    current :data:`SNAPSHOT_FORMAT`, the run's salt and config
    fingerprint, and anchor to a journal prefix that byte-matches
    ``journal_bytes`` (offset within bounds, SHA-256 of the prefix
    equal).  Anything else — torn file, foreign code version, journal
    rewritten underneath — is silently skipped: an unusable snapshot
    must degrade recovery, never corrupt it.  Returns ``None`` when no
    snapshot survives (full-replay fallback).
    """
    directory = snapshot_dir(journal_path)
    try:
        candidates = sorted(directory.glob("snap-*.json"), reverse=True)
    except OSError:
        return None
    for path in candidates:
        try:
            state = json.loads(path.read_text(encoding="ascii"))
        except (OSError, ValueError):
            continue
        if not isinstance(state, dict):
            continue
        if state.get("format") != SNAPSHOT_FORMAT:
            continue
        if state.get("salt") != salt:
            continue
        if state.get("fingerprint") != fingerprint:
            continue
        offset = state.get("journal_offset")
        if not isinstance(offset, int) or not (
            0 < offset <= len(journal_bytes)
        ):
            continue
        prefix_sha = hashlib.sha256(journal_bytes[:offset]).hexdigest()
        if state.get("journal_sha") != prefix_sha:
            continue
        return state
    return None


def list_snapshots(journal_path: Union[str, Path]) -> List[Path]:
    """All snapshot files of one journal, oldest first."""
    directory = snapshot_dir(journal_path)
    try:
        return sorted(directory.glob("snap-*.json"))
    except OSError:
        return []
