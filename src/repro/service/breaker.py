"""The service circuit breaker: fault storms trip it, answers degrade.

The breaker watches permanent container faults (the hard-fault storms
:mod:`repro.fabric.faults` models) on the virtual clock.  When
``threshold`` faults land within ``window`` ticks it *opens*: the
arbiter stops dispatching onto the fabric and serves cISA-only software
answers instead of failing requests.  After ``cooldown`` ticks it moves
to *half-open* — the next fabric completion closes it, the next fault
re-opens it immediately.

Pure integer state machine: no wall clock, no randomness.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ServiceError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """CLOSED / OPEN / HALF_OPEN over a sliding fault window."""

    def __init__(
        self, threshold: int = 3, window: int = 400, cooldown: int = 800
    ) -> None:
        if threshold < 1 or window < 1 or cooldown < 1:
            raise ServiceError(
                f"breaker needs threshold/window/cooldown >= 1, got "
                f"{threshold}/{window}/{cooldown}"
            )
        self.threshold = int(threshold)
        self.window = int(window)
        self.cooldown = int(cooldown)
        self.trips = 0
        self._state = "closed"
        self._open_until = -1
        self._faults: List[int] = []

    @property
    def state(self) -> str:
        return self._state

    def is_open(self, now: int) -> bool:
        self.poll(now)
        return self._state == "open"

    def faults_in_window(self, now: int) -> int:
        return sum(1 for t in self._faults if t > now - self.window)

    def poll(self, now: int) -> Optional[str]:
        """Advance time; returns ``"half_open"`` on that transition."""
        if self._state == "open" and now >= self._open_until:
            self._state = "half_open"
            return "half_open"
        return None

    def on_fault(self, now: int) -> Optional[str]:
        """Record a container fault; returns ``"open"`` when tripping."""
        self.poll(now)
        self._faults = [
            t for t in self._faults if t > now - self.window
        ]
        self._faults.append(now)
        if self._state == "half_open" or (
            self._state == "closed"
            and len(self._faults) >= self.threshold
        ):
            self._state = "open"
            self._open_until = now + self.cooldown
            self.trips += 1
            return "open"
        return None

    def on_success(self, now: int) -> Optional[str]:
        """Record a fabric success; closes a half-open breaker."""
        self.poll(now)
        if self._state == "half_open":
            self._state = "closed"
            self._faults.clear()
            return "closed"
        return None

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self._state}, {len(self._faults)} faults "
            f"in window, {self.trips} trips)"
        )
