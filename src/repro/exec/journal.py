"""Append-only JSONL journal of sweep-cell outcomes.

The fault-tolerant supervisor (:mod:`repro.exec.supervise`) records every
cell outcome — completion, retry, quarantine, interrupt — as one JSON
line appended (and flushed) to a journal file.  Because lines are
self-contained and written atomically *per cell outcome*, a sweep killed
at any point leaves a journal whose intact prefix fully describes what
finished: ``repro sweep --resume <journal>`` replays completed cells
from it bit-identically and re-runs only pending or quarantined ones.

Integrity story
---------------
* Every journal starts with a **header** line carrying the
  code-version salt (the same salt the result cache keys on).  A journal
  written by a different code version is rejected outright — replaying
  stale payloads would silently mix simulation semantics.
* Cell lines carry the cell's content-addressed **key** plus its full
  configuration; resume matches entries by key, so a journal from a
  *different grid* simply contributes nothing.
* A **truncated final line** (the crash case: the process died
  mid-write) is tolerated and ignored; garbage anywhere else raises
  :class:`JournalError` — a corrupt journal must not masquerade as a
  clean partial run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from .._atomic import trim_torn_tail
from ..errors import JournalError
from .cache import CODE_VERSION_SALT, canonical_json, cell_key
from .spec import SweepCell

__all__ = [
    "JOURNAL_FORMAT",
    "QuarantinedCell",
    "SweepJournal",
    "JournalState",
    "read_journal",
]

#: Version of the journal line format; bump on incompatible changes.
JOURNAL_FORMAT = 1


@dataclass(frozen=True)
class QuarantinedCell:
    """A cell the supervisor gave up on after exhausting its attempts."""

    cell: SweepCell
    key: str
    #: Failure taxonomy tag: ``timeout``, ``crash`` or ``poison``.
    failure: str
    message: str
    attempts: int

    @property
    def label(self) -> str:
        return self.cell.label

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "key": self.key,
            "failure": self.failure,
            "message": self.message,
            "attempts": self.attempts,
        }


class SweepJournal:
    """Writer side: append one JSON line per supervisor outcome.

    Lines are flushed immediately after each ``record_*`` call, so the
    journal's intact prefix always reflects every *finished* cell even
    if the supervisor process is killed without warning.  With
    ``fsync=True`` the *commit* lines (completed, quarantined,
    interrupted — the ones resume decisions hang on) are additionally
    forced to stable storage, surviving power loss as well as process
    death; retry lines stay flush-only, they are advisory.
    """

    def __init__(
        self,
        path: Union[str, Path],
        salt: str = CODE_VERSION_SALT,
        *,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.salt = str(salt)
        self.fsync = bool(fsync)
        self._handle: Optional[IO[str]] = None

    def _write(self, record: Dict[str, Any], commit: bool = False) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._trim_truncated_tail()
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._handle.write(
                    canonical_json(
                        {
                            "kind": "header",
                            "format": JOURNAL_FORMAT,
                            "salt": self.salt,
                        }
                    )
                    + "\n"
                )
        self._handle.write(canonical_json(record) + "\n")
        self._handle.flush()
        if commit and self.fsync:
            os.fsync(self._handle.fileno())

    def _trim_truncated_tail(self) -> None:
        """Drop a partial final line before appending to the journal.

        A previous writer killed mid-line leaves a file that does not
        end in a newline.  ``read_journal`` already ignores that partial
        line; appending onto it would instead fuse the next record into
        the garbage and corrupt the whole journal.  Truncating to the
        last complete line keeps writer and reader agreeing on what the
        journal contains — a fully-truncated header means an empty file,
        which is then rewritten fresh.
        """
        trim_torn_tail(self.path)

    def record_completed(
        self,
        cell: SweepCell,
        payload: Dict[str, Any],
        attempts: int,
        wall_time: float,
    ) -> None:
        """One cell finished; ``payload`` is its full result JSON."""
        self._write(
            {
                "kind": "cell",
                "status": "ok",
                "key": cell_key(cell, self.salt),
                "label": cell.label,
                "cell": cell.to_config(),
                "attempts": int(attempts),
                "wall_time": float(wall_time),
                "result": payload,
            },
            commit=True,
        )

    def record_retry(
        self,
        cell: SweepCell,
        attempt: int,
        failure: str,
        message: str,
        delay: float,
    ) -> None:
        """An attempt failed and the cell will be retried after ``delay``."""
        self._write(
            {
                "kind": "retry",
                "key": cell_key(cell, self.salt),
                "label": cell.label,
                "attempt": int(attempt),
                "failure": failure,
                "message": message,
                "delay": float(delay),
            }
        )

    def record_quarantined(self, quarantined: QuarantinedCell) -> None:
        """A cell exhausted its attempt budget and is out of the grid."""
        self._write(
            {
                "kind": "cell",
                "status": "quarantined",
                "key": quarantined.key,
                "label": quarantined.label,
                "cell": quarantined.cell.to_config(),
                "attempts": quarantined.attempts,
                "failure": quarantined.failure,
                "message": quarantined.message,
            },
            commit=True,
        )

    def record_interrupted(self, pending: int) -> None:
        """The sweep drained after SIGINT/SIGTERM with cells pending."""
        self._write({"kind": "interrupted", "pending": int(pending)}, commit=True)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class JournalState:
    """Reader side: everything a journal's intact prefix asserts."""

    #: Cell key -> result payload of every completed cell.
    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Cell key -> attempts recorded for the completed cell.
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Keys of quarantined cells (to be re-run on resume).
    quarantined: Dict[str, str] = field(default_factory=dict)
    #: Retry lines seen (observability only; resume ignores them).
    retries: int = 0
    #: Whether the journal records a drained interrupt.
    interrupted: bool = False
    #: Whether a truncated trailing line was dropped (crash evidence).
    truncated_tail: bool = False

    def payload_for(self, cell: SweepCell, salt: str) -> Optional[Dict[str, Any]]:
        """The recorded result of ``cell``, or None if it must (re-)run."""
        return self.completed.get(cell_key(cell, salt))


def read_journal(
    path: Union[str, Path], salt: str = CODE_VERSION_SALT
) -> JournalState:
    """Parse a journal, tolerating only a truncated final line.

    Raises
    ------
    JournalError
        When the file is unreadable, does not start with a journal
        header, was written under a different code-version salt or
        journal format, or contains garbage before its final line.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise JournalError(
            f"cannot read sweep journal {str(path)!r}: {exc}"
        ) from exc
    state = JournalState()
    lines = text.splitlines()
    if not lines:
        return state
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if number == len(lines):
                # The crash case: the writer died mid-line.  Everything
                # before this line is intact and trustworthy.
                state.truncated_tail = True
                break
            raise JournalError(
                f"sweep journal {str(path)!r} line {number} is not "
                f"valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise JournalError(
                f"sweep journal {str(path)!r} line {number} is not a "
                f"JSON object"
            )
        records.append(record)
    if not records:
        return state
    header = records[0]
    if header.get("kind") != "header":
        raise JournalError(
            f"sweep journal {str(path)!r} does not start with a header "
            f"line; not a journal (or written by an incompatible version)"
        )
    if header.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"sweep journal {str(path)!r} has format "
            f"{header.get('format')!r}; this reader understands "
            f"{JOURNAL_FORMAT} only"
        )
    if header.get("salt") != salt:
        raise JournalError(
            f"sweep journal {str(path)!r} was written under code-version "
            f"salt {header.get('salt')!r} but the current salt is "
            f"{salt!r}; its payloads cannot be replayed bit-identically "
            f"— re-run the sweep fresh"
        )
    for record in records[1:]:
        kind = record.get("kind")
        if kind == "cell":
            key = record.get("key")
            if not isinstance(key, str):
                continue
            if record.get("status") == "ok" and isinstance(
                record.get("result"), dict
            ):
                state.completed[key] = record["result"]
                state.attempts[key] = int(record.get("attempts", 1))
                state.quarantined.pop(key, None)
            elif record.get("status") == "quarantined":
                state.quarantined[key] = str(record.get("failure", ""))
        elif kind == "retry":
            state.retries += 1
        elif kind == "interrupted":
            state.interrupted = True
    return state
