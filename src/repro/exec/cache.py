"""Content-addressed on-disk cache of sweep-cell results.

Every :class:`~repro.exec.spec.SweepCell` hashes to a stable key:
SHA-256 over the canonical JSON of its configuration plus a
**code-version salt**.  The artifact stored under that key is the plain
JSON of the cell's :class:`~repro.sim.results.SimulationResult` — so a
repeated or resumed sweep skips every completed cell, and the cached
payload is byte-identical to what a fresh run would produce.

Invalidation story
------------------
* **Cell config change** (scheduler, AC count, frames, seed, faults):
  different canonical JSON, different key — automatic.
* **Code change that alters simulation semantics**: bump
  :data:`CODE_VERSION_SALT`.  The salt participates in every key, so one
  bump orphans all previous artifacts at once (they stay on disk until
  :meth:`ResultCache.clear`; stale files are never *read*).
* **Corrupt artifacts** (truncated writes, bit rot, concurrent
  interference): any artifact that fails to parse, fails its embedded
  salt/config check, or fails result reconstruction is treated as a
  cache **miss**, never an error — the cell simply re-runs and the
  artifact is rewritten.

Keys are process-independent by construction: canonical JSON fixes the
dictionary ordering and SHA-256 does not depend on ``PYTHONHASHSEED``,
so workers, resumed sessions and different machines agree on them.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from .._atomic import atomic_write_text
from .._version import __version__
from .spec import SweepCell

__all__ = [
    "CODE_VERSION_SALT",
    "cell_key",
    "canonical_json",
    "ResultCache",
]

#: Salt mixed into every cache key.  Bump the trailing tag whenever a
#: code change alters what any simulation produces (scheduler behaviour,
#: workload generation, cost models, result fields) — the package
#: version is included so releases re-key automatically.
CODE_VERSION_SALT = f"repro-{__version__}/sweep-cache-v2"

#: Artifact schema version; artifacts with another format are misses.
_ARTIFACT_FORMAT = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, pure ASCII."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def cell_key(cell: SweepCell, salt: str = CODE_VERSION_SALT) -> str:
    """The content-addressed cache key (hex SHA-256) of one cell."""
    payload = canonical_json({"salt": salt, "cell": cell.to_config()})
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


class ResultCache:
    """Directory of content-addressed sweep-cell artifacts.

    Artifacts are sharded by the first two key characters
    (``<root>/ab/abcdef....json``) so huge sweeps do not pile tens of
    thousands of files into one directory.  Writes are atomic
    (temp file + ``os.replace``), so a crashed or killed sweep can never
    leave a *readable* half-artifact behind — and even externally
    truncated files only downgrade to misses.

    Parameters
    ----------
    root:
        Cache directory (created on first write).
    salt:
        Code-version salt; see :data:`CODE_VERSION_SALT`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        salt: str = CODE_VERSION_SALT,
    ) -> None:
        self.root = Path(root)
        self.salt = str(salt)
        #: Read/write statistics since construction.
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(self, cell: SweepCell) -> str:
        return cell_key(cell, self.salt)

    def path_for(self, cell: SweepCell) -> Path:
        key = self.key(cell)
        return self.root / key[:2] / f"{key}.json"

    # -- read --------------------------------------------------------------

    def get(self, cell: SweepCell) -> Optional[Dict[str, Any]]:
        """The cached result payload of ``cell``, or ``None`` on a miss.

        Every failure mode — missing file, truncated/corrupt JSON, a
        salt or config mismatch, a wrong artifact format — counts as a
        miss; the cache never raises on read.
        """
        path = self.path_for(cell)
        try:
            text = path.read_text(encoding="utf-8")
            artifact = json.loads(text)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not self._artifact_matches(artifact, cell):
            self.misses += 1
            return None
        result = artifact.get("result")
        if not isinstance(result, dict):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def contains(self, cell: SweepCell) -> bool:
        """Whether a *valid* artifact for ``cell`` is on disk.

        Unlike :meth:`get` this probe does not touch the hit/miss
        statistics — supervisors use it to plan work without skewing
        the cache metrics of the actual run.
        """
        path = self.path_for(cell)
        try:
            artifact = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return self._artifact_matches(artifact, cell) and isinstance(
            artifact.get("result"), dict
        )

    def _artifact_matches(self, artifact: Any, cell: SweepCell) -> bool:
        """Paranoia check: the artifact describes exactly this cell."""
        if not isinstance(artifact, dict):
            return False
        if artifact.get("format") != _ARTIFACT_FORMAT:
            return False
        if artifact.get("salt") != self.salt:
            return False
        return artifact.get("cell") == cell.to_config()

    def read_through(
        self,
        cell: SweepCell,
        compute: Callable[[], Dict[str, Any]],
    ) -> Tuple[Dict[str, Any], bool]:
        """Serve ``cell`` from the cache, computing and storing on a miss.

        Returns ``(payload, hit)``.  This is the result-server mode used
        by the multi-tenant fabric service (:mod:`repro.service`):
        repeated requests for the same cell become admission-free hits,
        and the first miss pays for everyone.  ``compute`` must return
        the plain-JSON result payload (see
        :meth:`~repro.sim.results.SimulationResult.to_json_dict`).
        """
        cached = self.get(cell)
        if cached is not None:
            return cached, True
        payload = compute()
        self.put(cell, payload)
        return payload, False

    # -- write -------------------------------------------------------------

    def put(self, cell: SweepCell, result_payload: Dict[str, Any]) -> Path:
        """Store one cell's result payload atomically; returns the path."""
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = {
            "format": _ARTIFACT_FORMAT,
            "salt": self.salt,
            "key": self.key(cell),
            "cell": cell.to_config(),
            "result": result_payload,
        }
        text = json.dumps(artifact, sort_keys=True, indent=1)
        atomic_write_text(path, text, suffix=".json")
        self.stores += 1
        return path

    # -- maintenance -------------------------------------------------------

    def __len__(self) -> int:
        """Number of artifacts on disk (any salt)."""
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for shard in self.root.iterdir()
            if shard.is_dir()
            for entry in shard.glob("*.json")
        )

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                entry.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, {self.hits} hits, "
            f"{self.misses} misses, {self.stores} stores)"
        )
