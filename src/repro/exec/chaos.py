"""Deterministic chaos injection for sweep workers.

The supervisor's chaos harness makes worker-level disasters *scriptable*:
a :class:`ChaosSpec` names sweep cells by label glob and assigns each a
failure mode that is acted out **inside the worker process**, before the
cell's simulation starts:

* ``hang``  — the worker sleeps far past any sane timeout, exercising
  the per-cell deadline + kill path (:class:`CellTimeout`).
* ``crash`` — the worker dies instantly via ``os._exit`` without any
  Python-level cleanup, exercising dead-worker detection
  (:class:`WorkerCrash`).
* ``raise`` — the worker raises a deterministic exception, exercising
  the poison-cell path (:class:`PoisonedCell`).

Each entry can bound *how many attempts* it sabotages (``attempts``):
``cellX:crash:2`` crashes attempts 1 and 2 and lets attempt 3 succeed —
the transient-failure-then-recovery scenario.  Without a bound the entry
sabotages every attempt, which the supervisor must answer with
quarantine.

Specs are plain picklable dataclasses so they travel to worker
processes, and the string syntax (``<label-glob>:<mode>[:<attempts>]``,
comma-separated) is shared by the ``repro sweep --chaos`` flag and the
``REPRO_CHAOS`` environment variable.
"""

from __future__ import annotations

import fnmatch
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import SweepError
from .spec import SweepCell

__all__ = [
    "CHAOS_ENV_VAR",
    "CHAOS_MODES",
    "ChaosEntry",
    "ChaosSpec",
    "ChaosInjectedError",
    "parse_chaos_spec",
    "chaos_from_env",
]

#: Environment variable consulted by :func:`chaos_from_env`.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: The recognised failure modes, in documentation order.
CHAOS_MODES = ("hang", "crash", "raise")

#: How long a ``hang`` worker sleeps — far beyond any realistic
#: per-cell timeout, so the supervisor's deadline always fires first.
_HANG_SECONDS = 3600.0


class ChaosInjectedError(RuntimeError):
    """The deterministic exception thrown by ``raise``-mode chaos."""


@dataclass(frozen=True)
class ChaosEntry:
    """One sabotage rule: which cells, which failure, how many attempts."""

    #: :func:`fnmatch.fnmatch` pattern matched against the cell label
    #: (e.g. ``"HEF@4AC/*"`` or ``"*"``).
    pattern: str
    #: One of :data:`CHAOS_MODES`.
    mode: str
    #: Sabotage attempts 1..attempts only; ``None`` = every attempt.
    attempts: Optional[int] = None

    def matches(self, cell: SweepCell, attempt: int) -> bool:
        if not fnmatch.fnmatch(cell.label, self.pattern):
            return False
        return self.attempts is None or attempt <= self.attempts


@dataclass(frozen=True)
class ChaosSpec:
    """A set of chaos rules applied inside every worker process."""

    entries: Tuple[ChaosEntry, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.entries)

    def entry_for(self, cell: SweepCell, attempt: int) -> Optional[ChaosEntry]:
        """The first entry sabotaging this (cell, attempt), if any."""
        for entry in self.entries:
            if entry.matches(cell, attempt):
                return entry
        return None

    def apply(self, cell: SweepCell, attempt: int) -> None:
        """Act out the matching failure mode; returns iff none matches.

        Runs inside the worker process, before the cell simulates.
        """
        entry = self.entry_for(cell, attempt)
        if entry is None:
            return
        if entry.mode == "hang":
            time.sleep(_HANG_SECONDS)
        elif entry.mode == "crash":
            # Die without cleanup, exactly like a segfault would: no
            # exception travels back over the result pipe.
            os._exit(70)
        elif entry.mode == "raise":
            raise ChaosInjectedError(
                f"chaos: injected failure for cell {cell.label!r} "
                f"(attempt {attempt})"
            )


def parse_chaos_spec(text: str) -> ChaosSpec:
    """Parse ``<label-glob>:<mode>[:<attempts>]`` comma-separated rules.

    Examples: ``"*:raise"``, ``"HEF@4AC/*:crash:2,Molen@*:hang"``.

    Raises :class:`~repro.errors.SweepError` on malformed input.
    """
    entries: List[ChaosEntry] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.rsplit(":", 2)
        attempts: Optional[int] = None
        if len(parts) == 3 and parts[2].isdigit():
            pattern, mode, attempts_text = parts
            attempts = int(attempts_text)
            if attempts < 1:
                raise SweepError(
                    f"chaos attempts bound must be >= 1 in {chunk!r}"
                )
        elif len(parts) >= 2:
            pattern, mode = chunk.rsplit(":", 1)
        else:
            raise SweepError(
                f"chaos rule {chunk!r} is not "
                f"'<label-glob>:<mode>[:<attempts>]'"
            )
        if mode not in CHAOS_MODES:
            raise SweepError(
                f"unknown chaos mode {mode!r} in {chunk!r}; "
                f"expected one of {', '.join(CHAOS_MODES)}"
            )
        if not pattern:
            raise SweepError(f"empty label pattern in chaos rule {chunk!r}")
        entries.append(ChaosEntry(pattern=pattern, mode=mode, attempts=attempts))
    return ChaosSpec(entries=tuple(entries))


def chaos_from_env() -> ChaosSpec:
    """The chaos spec configured via :data:`CHAOS_ENV_VAR`, if any."""
    value = os.environ.get(CHAOS_ENV_VAR, "")
    if not value.strip():
        return ChaosSpec()
    return parse_chaos_spec(value)
