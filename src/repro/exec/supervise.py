"""Fault-tolerant supervision of sweep execution.

:func:`run_supervised` is the resilient sibling of
:func:`repro.exec.runner.run_sweep`: instead of handing cells to a bare
process pool (where one hung or segfaulting worker loses the whole
grid), it runs **one worker process per in-flight cell** and supervises
each through a result pipe.  That buys exactly the four guarantees the
plain pool cannot give:

1. **Per-cell wall-clock timeouts.**  A cell that exceeds its deadline
   is killed (``terminate`` then ``kill``) and its slot respawned —
   futures cannot do this, because a pool worker stuck in C code never
   honours cancellation.
2. **Retries with seeded backoff.**  Transient failures re-enter the
   queue after an exponential-backoff delay with seeded jitter, computed
   through :func:`repro.fabric.faults.backoff_delay` — the same helper
   the fabric's :class:`~repro.fabric.faults.RetryPolicy` uses for
   bitstream rewrites, so one tested formula serves both layers.
3. **Quarantine, not abort.**  A cell that exhausts its attempt budget
   is recorded as a :class:`QuarantinedCell` with a failure taxonomy tag
   (``timeout`` / ``crash`` / ``poison``) and the rest of the grid keeps
   going.
4. **Journal + graceful shutdown.**  Every outcome is appended to a
   JSONL journal (:mod:`repro.exec.journal`); SIGINT/SIGTERM stop
   dispatch, drain in-flight cells, and leave a journal from which
   ``repro sweep --resume`` replays completed cells bit-identically.

The determinism contract is untouched: cells are pure functions of their
configuration, so replayed, retried, resumed and fresh results are all
byte-identical (``tests/test_exec_resume.py`` pins this down).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import random
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from types import FrameType
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from ..errors import SweepError
from ..fabric.faults import backoff_delay
from ..sim.results import SimulationResult
from .cache import CODE_VERSION_SALT, ResultCache, cell_key
from .chaos import ChaosSpec
from .journal import QuarantinedCell, SweepJournal, read_journal
from .spec import SweepCell, SweepSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..obs.tracer import Tracer
    from .runner import CellOutcome, SweepReport

__all__ = [
    "CellFailure",
    "CellTimeout",
    "WorkerCrash",
    "PoisonedCell",
    "SupervisorPolicy",
    "policy_from_env",
    "run_supervised",
]


def _wall_clock() -> float:
    """The supervisor's only direct wall-clock read (RL007 seam).

    Deadlines and retry backoff are wall-clock by nature — a hung worker
    hangs in real time — but every *site* that needs the time goes
    through this one function, so the deterministic-journal guarantees
    stay auditable: nothing else in this module may call
    ``time.monotonic()`` (enforced by lint rule RL007).
    """
    return time.monotonic()


# -- failure taxonomy ----------------------------------------------------------


@dataclass(frozen=True)
class CellFailure:
    """One failed attempt at one cell, classified."""

    #: Class-level taxonomy tag; concrete subclasses override it.
    kind = ""

    message: str


@dataclass(frozen=True)
class CellTimeout(CellFailure):
    """The cell exceeded its wall-clock deadline and the worker was
    killed.  The canonical hang: an infinite loop, a deadlock, a stuck
    syscall — nothing a future's ``cancel()`` could have reached."""

    kind = "timeout"


@dataclass(frozen=True)
class WorkerCrash(CellFailure):
    """The worker process died without delivering a result (segfault,
    ``os._exit``, OOM kill): the result pipe hit EOF with no message."""

    kind = "crash"


@dataclass(frozen=True)
class PoisonedCell(CellFailure):
    """The cell's own code raised: a deterministic Python exception
    travelled back over the result pipe.  Retrying usually cannot help
    (the cell is a pure function of its config), but the attempt budget
    still applies — chaos-injected exceptions may be bounded."""

    kind = "poison"


# -- policy --------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the supervision layer.

    Parameters
    ----------
    timeout:
        Per-cell wall-clock budget in seconds; ``None`` disables the
        deadline (hangs then only die at operator interrupt).
    max_attempts:
        Total tries per cell (first run included); >= 1.
    backoff_seconds / backoff_factor / jitter / retry_seed:
        The retry delay schedule, evaluated through
        :func:`repro.fabric.faults.backoff_delay` with a private RNG
        seeded by ``retry_seed`` — two supervised runs of the same grid
        replay the identical jitter sequence.
    """

    timeout: Optional[float] = None
    max_attempts: int = 3
    backoff_seconds: float = 0.1
    backoff_factor: float = 2.0
    jitter: float = 0.1
    retry_seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise SweepError(
                f"timeout must be positive (or None), got {self.timeout!r}"
            )
        if self.max_attempts < 1:
            raise SweepError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.backoff_seconds < 0:
            raise SweepError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds!r}"
            )
        if self.backoff_factor < 1.0:
            raise SweepError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SweepError(
                f"jitter must be within [0, 1], got {self.jitter!r}"
            )

    def retry_delay(self, failures: int, rng: random.Random) -> float:
        """Seconds to wait before the retry after failure ``failures``."""
        return backoff_delay(
            self.backoff_seconds,
            self.backoff_factor,
            failures,
            jitter=self.jitter,
            rng=rng,
        )


def policy_from_env() -> Optional[SupervisorPolicy]:
    """A :class:`SupervisorPolicy` from ``REPRO_TIMEOUT`` (seconds) and
    ``REPRO_MAX_ATTEMPTS``, or ``None`` when neither is set.

    This is how the figure/table entry points in
    :mod:`repro.analysis.experiments` (and the benchmarks driving them)
    opt into supervision without new function plumbing at every call
    site.
    """
    timeout_text = os.environ.get("REPRO_TIMEOUT", "").strip()
    attempts_text = os.environ.get("REPRO_MAX_ATTEMPTS", "").strip()
    if not timeout_text and not attempts_text:
        return None
    timeout: Optional[float] = None
    if timeout_text:
        try:
            timeout = float(timeout_text)
        except ValueError as exc:
            raise SweepError(
                f"REPRO_TIMEOUT must be a number of seconds, "
                f"got {timeout_text!r}"
            ) from exc
    max_attempts = 3
    if attempts_text:
        try:
            max_attempts = int(attempts_text)
        except ValueError as exc:
            raise SweepError(
                f"REPRO_MAX_ATTEMPTS must be an integer, "
                f"got {attempts_text!r}"
            ) from exc
    return SupervisorPolicy(timeout=timeout, max_attempts=max_attempts)


# -- worker side ---------------------------------------------------------------


def _worker_main(
    conn: multiprocessing.connection.Connection,
    cell: SweepCell,
    attempt: int,
    chaos: Optional[ChaosSpec],
) -> None:
    """Entry point of one supervised worker process.

    Sends exactly one message back: ``("ok", payload, seconds)`` or
    ``("error", exception_type_name, message)``.  A hang sends nothing
    (the supervisor's deadline fires); a crash closes the pipe without a
    message (the supervisor reads EOF).
    """
    from .runner import _timed_execute

    # The supervisor owns interrupt handling; workers must not race it
    # to the console or die mid-cache-write on a Ctrl-C aimed at the
    # parent.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        if chaos is not None:
            chaos.apply(cell, attempt)
        payload, seconds = _timed_execute(cell)
        conn.send(("ok", payload, seconds))
    except BaseException as exc:
        conn.send(("error", type(exc).__name__, str(exc)))
    finally:
        conn.close()


# -- supervisor ----------------------------------------------------------------


@dataclass
class _InFlight:
    """One live worker process and its bookkeeping."""

    index: int
    cell: SweepCell
    attempt: int
    process: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    deadline: Optional[float]
    started: float


@dataclass
class _QueueItem:
    """One cell waiting to run (or re-run after backoff)."""

    index: int
    cell: SweepCell
    attempt: int = 1
    not_before: float = 0.0
    last_failure: Optional[CellFailure] = None


class _Supervisor:
    """The event loop behind :func:`run_supervised`."""

    def __init__(
        self,
        cells: Sequence[SweepCell],
        jobs: int,
        cache: Optional[ResultCache],
        policy: SupervisorPolicy,
        journal: Optional[SweepJournal],
        chaos: Optional[ChaosSpec],
        progress: Optional[Callable[["CellOutcome"], None]],
        tracer: Optional["Tracer"],
        metrics: Optional["MetricsRegistry"],
        salt: str = CODE_VERSION_SALT,
    ) -> None:
        self.cells = list(cells)
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.policy = policy
        self.journal = journal
        self.chaos = chaos
        self.progress = progress
        self.tracer = tracer
        self.metrics = metrics
        self.salt = salt
        self.rng = random.Random(policy.retry_seed)
        self.outcomes: List[Optional["CellOutcome"]] = [None] * len(cells)
        self.quarantined: List[QuarantinedCell] = []
        self.queue: List[_QueueItem] = []
        self.in_flight: List[_InFlight] = []
        self.retries = 0
        self.resume_hits = 0
        self.interrupts = 0

    # -- observability helpers -------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _emit(self, event: Any) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(event)

    # -- outcome plumbing -------------------------------------------------

    def _complete(
        self,
        index: int,
        cell: SweepCell,
        payload: Dict[str, Any],
        seconds: float,
        cache_hit: bool,
        attempts: int,
        journal_it: bool = True,
    ) -> None:
        from .runner import CellOutcome

        if self.cache is not None and not cache_hit:
            self.cache.put(cell, payload)
        if self.journal is not None and journal_it:
            self.journal.record_completed(cell, payload, attempts, seconds)
        outcome = CellOutcome(
            cell=cell,
            result=SimulationResult.from_json_dict(payload),
            wall_time=seconds,
            cache_hit=cache_hit,
        )
        self.outcomes[index] = outcome
        if self.progress is not None:
            self.progress(outcome)

    def _fail(self, item: _QueueItem, failure: CellFailure) -> None:
        """One attempt failed: schedule a retry or quarantine the cell."""
        from ..obs.events import CellQuarantined, CellRetry

        if item.attempt < self.policy.max_attempts and self.interrupts == 0:
            delay = self.policy.retry_delay(item.attempt, self.rng)
            self.retries += 1
            self._count("supervisor.retries")
            self._count(f"supervisor.failures.{failure.kind}")
            self._emit(
                CellRetry(
                    cycle=0,
                    label=item.cell.label,
                    attempt=item.attempt,
                    failure=failure.kind,
                    backoff_ms=int(delay * 1000),
                )
            )
            if self.journal is not None:
                self.journal.record_retry(
                    item.cell,
                    item.attempt,
                    failure.kind,
                    failure.message,
                    delay,
                )
            self.queue.append(
                _QueueItem(
                    index=item.index,
                    cell=item.cell,
                    attempt=item.attempt + 1,
                    not_before=_wall_clock() + delay,
                    last_failure=failure,
                )
            )
            return
        quarantined = QuarantinedCell(
            cell=item.cell,
            key=cell_key(item.cell, self.salt),
            failure=failure.kind,
            message=failure.message,
            attempts=item.attempt,
        )
        self.quarantined.append(quarantined)
        self._count("supervisor.quarantined")
        self._count(f"supervisor.failures.{failure.kind}")
        self._emit(
            CellQuarantined(
                cycle=0,
                label=item.cell.label,
                attempts=item.attempt,
                failure=failure.kind,
            )
        )
        if self.journal is not None:
            self.journal.record_quarantined(quarantined)

    # -- process management ------------------------------------------------

    def _dispatch(self, item: _QueueItem) -> None:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_worker_main,
            args=(child_conn, item.cell, item.attempt, self.chaos),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = _wall_clock()
        self.in_flight.append(
            _InFlight(
                index=item.index,
                cell=item.cell,
                attempt=item.attempt,
                process=process,
                conn=parent_conn,
                deadline=(
                    now + self.policy.timeout
                    if self.policy.timeout is not None
                    else None
                ),
                started=now,
            )
        )

    def _kill(self, flight: _InFlight) -> None:
        """Forcefully stop one worker (timeout or hard interrupt)."""
        if flight.process.is_alive():
            flight.process.terminate()
            flight.process.join(timeout=1.0)
            if flight.process.is_alive():
                flight.process.kill()
                flight.process.join(timeout=1.0)
        flight.conn.close()

    def _reap(self, flight: _InFlight) -> None:
        """Collect the result (or classify the failure) of one worker."""
        failure: Optional[CellFailure]
        try:
            message = flight.conn.recv()
        except (EOFError, OSError):
            message = None
        flight.process.join(timeout=5.0)
        if flight.process.is_alive():  # pragma: no cover - defensive
            flight.process.kill()
            flight.process.join(timeout=1.0)
        flight.conn.close()
        item = _QueueItem(
            index=flight.index, cell=flight.cell, attempt=flight.attempt
        )
        if message is None:
            exit_code = flight.process.exitcode
            failure = WorkerCrash(
                message=(
                    f"worker for cell {flight.cell.label!r} died without a "
                    f"result (exit code {exit_code})"
                )
            )
            self._fail(item, failure)
            return
        status = message[0]
        if status == "ok":
            _, payload, seconds = message
            self._complete(
                index=flight.index,
                cell=flight.cell,
                payload=payload,
                seconds=seconds,
                cache_hit=False,
                attempts=flight.attempt,
            )
            return
        _, exc_type, exc_message = message
        failure = PoisonedCell(message=f"{exc_type}: {exc_message}")
        self._fail(item, failure)

    def _expire(self, flight: _InFlight) -> None:
        """A worker blew its deadline: kill it and classify as timeout."""
        self._kill(flight)
        budget = self.policy.timeout if self.policy.timeout is not None else 0.0
        self._fail(
            _QueueItem(
                index=flight.index, cell=flight.cell, attempt=flight.attempt
            ),
            CellTimeout(
                message=(
                    f"cell {flight.cell.label!r} exceeded its "
                    f"{budget:g}s wall-clock budget"
                )
            ),
        )

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        while self.queue or self.in_flight:
            now = _wall_clock()
            if self.interrupts >= 2:
                # Second signal: the operator wants out *now*.  Kill the
                # in-flight workers; their cells stay pending in the
                # journal and re-run on --resume.
                for flight in self.in_flight:
                    self._kill(flight)
                self.in_flight.clear()
                self.queue.clear()
                break
            if self.interrupts == 0:
                ready = [q for q in self.queue if q.not_before <= now]
                ready.sort(key=lambda q: (q.not_before, q.index))
                while ready and len(self.in_flight) < self.jobs:
                    item = ready.pop(0)
                    self.queue.remove(item)
                    self._dispatch(item)
            elif not self.in_flight:
                # Interrupted and nothing left to drain.
                break
            wait_timeout = self._next_wait(now)
            if self.in_flight:
                ready_conns = multiprocessing.connection.wait(
                    [f.conn for f in self.in_flight], timeout=wait_timeout
                )
                for conn in ready_conns:
                    flight = next(
                        f for f in self.in_flight if f.conn is conn
                    )
                    self.in_flight.remove(flight)
                    self._reap(flight)
                now = _wall_clock()
                expired = [
                    f
                    for f in self.in_flight
                    if f.deadline is not None and f.deadline <= now
                ]
                for flight in expired:
                    self.in_flight.remove(flight)
                    self._expire(flight)
            elif wait_timeout is not None and wait_timeout > 0:
                time.sleep(wait_timeout)

    def _next_wait(self, now: float) -> Optional[float]:
        """Seconds until the next deadline or retry becomes actionable."""
        horizons: List[float] = []
        for flight in self.in_flight:
            if flight.deadline is not None:
                horizons.append(flight.deadline)
        if self.interrupts == 0 and len(self.in_flight) < self.jobs:
            for item in self.queue:
                horizons.append(item.not_before)
        if not horizons:
            return None
        return max(0.0, min(horizons) - now) + 0.001

    @property
    def pending(self) -> int:
        """Cells neither completed nor quarantined (interrupt leftovers)."""
        done = sum(1 for o in self.outcomes if o is not None)
        return len(self.cells) - done - len(self.quarantined)


def run_supervised(
    spec: Union[SweepSpec, Sequence[SweepCell]],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[SupervisorPolicy] = None,
    journal_path: Optional[Union[str, Path]] = None,
    resume_from: Optional[Union[str, Path]] = None,
    chaos: Optional[ChaosSpec] = None,
    progress: Optional[Callable[["CellOutcome"], None]] = None,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    fsync: bool = False,
) -> "SweepReport":
    """Execute a sweep under full supervision.

    Semantics match :func:`repro.exec.runner.run_sweep` (cache-first,
    outcomes in cell enumeration order, bit-identical results), plus the
    resilience features described in the module docstring.  Completed
    cells land in ``outcomes``; cells that exhausted their attempt
    budget land in ``report.quarantined``; on a drained interrupt
    ``report.interrupted`` is ``True`` and unfinished cells are simply
    absent (the journal knows they are pending).

    Parameters beyond ``run_sweep``'s
    ------------------------------------
    policy:
        Timeouts/retries/backoff; defaults to :class:`SupervisorPolicy`.
    journal_path:
        Where to append the outcome journal; ``None`` disables
        journaling (resume then relies on the cache alone).
    resume_from:
        A journal from a previous (killed or interrupted) run; its
        completed payloads are replayed bit-identically and only
        pending/quarantined cells re-run.
    chaos:
        Fault injection acted out inside the workers (tests/CI only).
    tracer / metrics:
        Supervisor-level observability: retry, quarantine and resume
        events plus ``supervisor.*`` counters.
    fsync:
        Force every journal *commit* line (completed / quarantined /
        interrupted) to stable storage before continuing.
    """
    from ..obs.events import CellResumed
    from .runner import SweepReport

    policy = policy if policy is not None else SupervisorPolicy()
    cells = list(spec.cells() if isinstance(spec, SweepSpec) else spec)
    started = time.perf_counter()

    salt = cache.salt if cache is not None else CODE_VERSION_SALT
    journal: Optional[SweepJournal] = None
    if journal_path is not None:
        journal = SweepJournal(journal_path, salt=salt, fsync=fsync)
    resume_state = None
    if resume_from is not None:
        resume_state = read_journal(resume_from, salt=salt)
    # When appending to the very journal we are resuming from, its
    # completed lines are already there — do not duplicate them.
    rejournal_replays = journal is not None and (
        resume_from is None
        or Path(journal_path or "").resolve() != Path(resume_from).resolve()
    )

    supervisor = _Supervisor(
        cells=cells,
        jobs=jobs,
        cache=cache,
        policy=policy,
        journal=journal,
        chaos=chaos,
        progress=progress,
        tracer=tracer,
        metrics=metrics,
        salt=salt,
    )

    # Serve every cell we can without spawning anything: journal replay
    # first (a resumed run must not depend on cache configuration), then
    # the result cache.  The rest is queued for supervised execution.
    for index, cell in enumerate(cells):
        if resume_state is not None:
            payload = resume_state.payload_for(cell, salt)
            if payload is not None:
                supervisor.resume_hits += 1
                supervisor._count("supervisor.resume_hits")
                supervisor._emit(
                    CellResumed(cycle=0, label=cell.label, source="journal")
                )
                supervisor._complete(
                    index=index,
                    cell=cell,
                    payload=payload,
                    seconds=0.0,
                    cache_hit=True,
                    attempts=resume_state.attempts.get(
                        cell_key(cell, salt), 1
                    ),
                    journal_it=rejournal_replays,
                )
                continue
        if cache is not None:
            t0 = time.perf_counter()
            payload = cache.get(cell)
            if payload is not None:
                supervisor._complete(
                    index=index,
                    cell=cell,
                    payload=payload,
                    seconds=time.perf_counter() - t0,
                    cache_hit=True,
                    attempts=1,
                )
                continue
        supervisor.queue.append(_QueueItem(index=index, cell=cell))

    previous_handlers = _install_signal_handlers(supervisor)
    try:
        supervisor.run()
    finally:
        _restore_signal_handlers(previous_handlers)
        if journal is not None:
            if supervisor.interrupts > 0:
                journal.record_interrupted(supervisor.pending)
            journal.close()

    done = [o for o in supervisor.outcomes if o is not None]
    return SweepReport(
        outcomes=done,
        elapsed=time.perf_counter() - started,
        jobs=max(1, int(jobs)),
        quarantined=list(supervisor.quarantined),
        interrupted=supervisor.interrupts > 0,
        resume_hits=supervisor.resume_hits,
        retries=supervisor.retries,
    )


_HandlerMap = Dict[int, Any]


def _install_signal_handlers(supervisor: _Supervisor) -> _HandlerMap:
    """Route SIGINT/SIGTERM to graceful drain (main thread only)."""
    import threading

    previous: _HandlerMap = {}
    if threading.current_thread() is not threading.main_thread():
        return previous

    def _handler(signum: int, frame: Optional[FrameType]) -> None:
        supervisor.interrupts += 1

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            continue
    return previous


def _restore_signal_handlers(previous: _HandlerMap) -> None:
    for signum, handler in previous.items():
        signal.signal(signum, handler)
