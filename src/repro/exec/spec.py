"""Declarative sweep specifications.

A design-space sweep is a grid over (system, scheduler, AC count, fault
configuration, workload).  :class:`SweepSpec` describes the grid
declaratively; :meth:`SweepSpec.cells` enumerates it into concrete,
picklable :class:`SweepCell` values — the unit of work the runner
dispatches and the cache keys on.

Cells are plain frozen dataclasses over primitives on purpose: they
cross process boundaries unchanged, and their canonical-JSON encoding
(:meth:`SweepCell.to_config`) is the input of the content-addressed
cache key, so a cell's identity is exactly its configuration and nothing
else (no object ids, no insertion order, no hash randomization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..workload.trace import Workload

__all__ = ["WorkloadSpec", "SweepCell", "SweepSpec"]


#: Systems a cell can simulate.
_SYSTEMS = ("RISPP", "Molen", "Software")

#: Trace-replay engines a cell can request (see repro.sim.engine.ENGINES).
_ENGINES = ("reference", "vector", "auto")


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible workload: the H.264 model plus optional filters.

    ``hot_spots``/``max_traces`` reproduce the trace subsets the figure
    experiments use (e.g. Figure 2 replays only the first two ME
    invocations).  Filters are applied after generation, so the same
    ``(frames, seed)`` pair always yields the same underlying traces.

    ``generator`` selects the trace source: ``"h264"`` (default) is the
    calibrated H.264 model; ``"adversarial"`` builds a seeded
    phase-misprediction workload
    (:class:`~repro.workload.adversarial.AdversarialWorkloadModel`,
    three phases per ``frames`` unit, flip probability ``flip_rate``).
    The extra keys only enter :meth:`to_config` for non-default
    generators, so every pre-existing cell configuration — and with it
    every cache key — stays byte-identical.
    """

    frames: int = 40
    seed: int = 2008
    hot_spots: Optional[Tuple[str, ...]] = None
    max_traces: Optional[int] = None
    generator: str = "h264"
    flip_rate: float = 0.25

    def __post_init__(self) -> None:
        if self.frames <= 0:
            raise SimulationError(
                f"workload needs at least one frame, got {self.frames}"
            )
        if self.generator not in ("h264", "adversarial"):
            raise SimulationError(
                f"unknown workload generator {self.generator!r}; "
                "known: ['adversarial', 'h264']"
            )
        if not 0.0 <= self.flip_rate <= 1.0:
            raise SimulationError(
                f"flip rate must be within [0, 1], got {self.flip_rate!r}"
            )
        if self.hot_spots is not None:
            object.__setattr__(self, "hot_spots", tuple(self.hot_spots))

    def build(self) -> "Workload":
        """Generate (and filter) the workload this spec describes."""
        from ..workload.adversarial import AdversarialWorkloadModel
        from ..workload.model import H264WorkloadModel
        from ..workload.trace import Workload

        if self.generator == "adversarial":
            workload = AdversarialWorkloadModel(
                num_phases=self.frames * 3,
                seed=self.seed,
                flip_rate=self.flip_rate,
            ).generate()
        else:
            workload = H264WorkloadModel(
                num_frames=self.frames, seed=self.seed
            ).generate()
        if self.hot_spots is None and self.max_traces is None:
            return workload
        traces = list(workload.traces)
        name = workload.name
        if self.hot_spots is not None:
            keep = set(self.hot_spots)
            traces = [t for t in traces if t.hot_spot in keep]
            name += "-" + "+".join(self.hot_spots)
        if self.max_traces is not None:
            traces = traces[: self.max_traces]
        return Workload(name=name, traces=traces)

    def to_config(self) -> Dict[str, Any]:
        config: Dict[str, Any] = {
            "frames": int(self.frames),
            "seed": int(self.seed),
            "hot_spots": (
                None if self.hot_spots is None else list(self.hot_spots)
            ),
            "max_traces": (
                None if self.max_traces is None else int(self.max_traces)
            ),
        }
        if self.generator != "h264":
            # Non-default generators extend the config; the default
            # stays byte-identical to pre-generator cells (cache keys!).
            config["generator"] = self.generator
            config["flip_rate"] = float(self.flip_rate)
        return config


@dataclass(frozen=True)
class SweepCell:
    """One point of the design space: a single simulator run.

    ``system`` selects the simulator (``RISPP``, ``Molen`` or
    ``Software``); ``scheduler`` only applies to RISPP.  Fault fields
    describe the Bernoulli load-fault configuration (``fault_rate == 0``
    means the perfect fabric).
    """

    system: str
    num_acs: int
    workload: WorkloadSpec
    scheduler: Optional[str] = None
    record_segments: bool = False
    fault_rate: float = 0.0
    fault_seed: int = 2008
    max_retries: int = 3
    #: Trace-replay engine (``reference``/``vector``/``auto``).  The
    #: engines are bit-identical, so the choice is an execution detail,
    #: not part of the cell's identity — it is deliberately excluded
    #: from :meth:`to_config` and therefore from the cache key.
    engine: str = "reference"
    #: PREFETCH scheduler knobs; only consulted (and only part of the
    #: cell's config/cache identity) when ``scheduler == "PREFETCH"``.
    prefetch_confidence: float = 0.6
    prefetch_budget: int = 4

    def __post_init__(self) -> None:
        if self.system not in _SYSTEMS:
            raise SimulationError(
                f"unknown system {self.system!r}; known: {list(_SYSTEMS)}"
            )
        if self.system == "RISPP" and not self.scheduler:
            raise SimulationError("a RISPP cell needs a scheduler name")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise SimulationError(
                f"fault rate must be within [0, 1], got {self.fault_rate!r}"
            )
        if self.engine not in _ENGINES:
            raise SimulationError(
                f"unknown engine {self.engine!r}; known: {sorted(_ENGINES)}"
            )
        if not 0.0 <= self.prefetch_confidence <= 1.0:
            raise SimulationError(
                "prefetch confidence must be within [0, 1], got "
                f"{self.prefetch_confidence!r}"
            )
        if self.prefetch_budget < 0:
            raise SimulationError(
                f"prefetch budget must be >= 0, got {self.prefetch_budget!r}"
            )

    @property
    def label(self) -> str:
        """Compact human-readable cell name for reports and progress."""
        who = self.scheduler if self.system == "RISPP" else self.system
        text = f"{who}@{self.num_acs}AC/{self.workload.frames}f"
        if self.fault_rate > 0.0:
            text += f"/fault{self.fault_rate:g}"
        return text

    def to_config(self) -> Dict[str, Any]:
        """Canonical configuration dictionary (the cache-key input).

        Only plain JSON types, fully describing the simulation this cell
        performs.  Two cells produce the same simulation result if and
        only if their configs are equal.
        """
        config: Dict[str, Any] = {
            "system": self.system,
            "scheduler": self.scheduler,
            "num_acs": int(self.num_acs),
            "workload": self.workload.to_config(),
            "record_segments": bool(self.record_segments),
            "fault_rate": float(self.fault_rate),
            "fault_seed": int(self.fault_seed),
            "max_retries": int(self.max_retries),
        }
        if self.scheduler == "PREFETCH":
            # The knobs change what PREFETCH simulates, so they must be
            # part of its identity; for every other scheduler they are
            # inert and deliberately left out (configs — and cache keys
            # — of pre-existing cells stay byte-identical).
            config["prefetch_confidence"] = float(self.prefetch_confidence)
            config["prefetch_budget"] = int(self.prefetch_budget)
        return config


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid.

    The grid is (``schedulers`` x ``ac_counts``) RISPP cells, plus one
    Molen baseline per AC count (``include_molen``) and one pure-software
    run (``include_software``).  All cells share the workload and fault
    configuration; richer grids are built by concatenating the cells of
    several specs.
    """

    schedulers: Tuple[str, ...] = ("HEF",)
    ac_counts: Tuple[int, ...] = (10,)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    include_molen: bool = False
    include_software: bool = False
    record_segments: bool = False
    fault_rate: float = 0.0
    fault_seed: int = 2008
    max_retries: int = 3
    engine: str = "reference"
    #: PREFETCH knobs, applied to every PREFETCH cell of the grid (inert
    #: for the other schedulers).
    prefetch_confidence: float = 0.6
    prefetch_budget: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(self, "ac_counts", tuple(self.ac_counts))
        if self.engine not in _ENGINES:
            raise SimulationError(
                f"unknown engine {self.engine!r}; known: {sorted(_ENGINES)}"
            )

    def cells(self) -> List[SweepCell]:
        """Enumerate the grid, deterministically ordered.

        Order is AC count outermost (matching the Figure 7 sweep loop),
        then scheduler, then the Molen baseline; the software run comes
        last.  The order is part of the engine's contract: reports list
        cells exactly as enumerated here.
        """
        cells: List[SweepCell] = []
        for num_acs in self.ac_counts:
            for scheduler in self.schedulers:
                cells.append(
                    SweepCell(
                        system="RISPP",
                        scheduler=scheduler,
                        num_acs=num_acs,
                        workload=self.workload,
                        record_segments=self.record_segments,
                        fault_rate=self.fault_rate,
                        fault_seed=self.fault_seed,
                        max_retries=self.max_retries,
                        engine=self.engine,
                        prefetch_confidence=self.prefetch_confidence,
                        prefetch_budget=self.prefetch_budget,
                    )
                )
            if self.include_molen:
                cells.append(
                    SweepCell(
                        system="Molen",
                        num_acs=num_acs,
                        workload=self.workload,
                        record_segments=self.record_segments,
                        fault_rate=self.fault_rate,
                        fault_seed=self.fault_seed,
                        max_retries=self.max_retries,
                        engine=self.engine,
                    )
                )
        if self.include_software:
            cells.append(
                SweepCell(
                    system="Software",
                    num_acs=0,
                    workload=self.workload,
                    engine=self.engine,
                )
            )
        return cells

    def __len__(self) -> int:
        return len(self.cells())
