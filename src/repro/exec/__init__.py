"""repro.exec — the sweep-execution subsystem.

Design-space sweeps (Figure 7's scheduler x AC-count grid and anything
larger) run through three pieces:

* :class:`~repro.exec.spec.SweepSpec` — a declarative grid that
  enumerates (system, scheduler, AC count, fault config, workload)
  cells,
* :func:`~repro.exec.runner.run_sweep` — a ``concurrent.futures``
  process-pool runner with chunked dispatch and per-cell timing,
* :class:`~repro.exec.cache.ResultCache` — a content-addressed on-disk
  cache (cell config + code-version salt, hashed to a JSON artifact of
  the :class:`~repro.sim.results.SimulationResult`) that makes repeated
  or resumed sweeps skip completed cells,
* :func:`~repro.exec.supervise.run_supervised` — the fault-tolerant
  supervision layer (per-cell timeouts, seeded-backoff retries,
  quarantine, JSONL journaling with ``--resume``, graceful SIGINT/
  SIGTERM shutdown) with chaos injection (:mod:`repro.exec.chaos`) for
  testing it.

Parallel runs are bit-identical to serial runs; cache replays, journal
resumes and supervised runs are bit-identical to both.  The figure/table
drivers in :mod:`repro.analysis.experiments`, the ``sweep`` CLI command
and the benchmark harness all execute through this engine.
"""

from __future__ import annotations

from .cache import CODE_VERSION_SALT, ResultCache, canonical_json, cell_key
from .chaos import ChaosEntry, ChaosSpec, chaos_from_env, parse_chaos_spec
from .journal import QuarantinedCell, SweepJournal, read_journal
from .runner import (
    CellOutcome,
    SweepReport,
    cache_from_env,
    default_jobs,
    execute_cell,
    run_sweep,
    timed_execute,
)
from .spec import SweepCell, SweepSpec, WorkloadSpec
from .supervise import (
    CellFailure,
    CellTimeout,
    PoisonedCell,
    SupervisorPolicy,
    WorkerCrash,
    policy_from_env,
    run_supervised,
)

__all__ = [
    "WorkloadSpec",
    "SweepCell",
    "SweepSpec",
    "CODE_VERSION_SALT",
    "ResultCache",
    "canonical_json",
    "cell_key",
    "CellOutcome",
    "SweepReport",
    "execute_cell",
    "timed_execute",
    "run_sweep",
    "default_jobs",
    "cache_from_env",
    # supervision
    "SupervisorPolicy",
    "CellFailure",
    "CellTimeout",
    "WorkerCrash",
    "PoisonedCell",
    "policy_from_env",
    "run_supervised",
    # journal
    "SweepJournal",
    "QuarantinedCell",
    "read_journal",
    # chaos
    "ChaosEntry",
    "ChaosSpec",
    "parse_chaos_spec",
    "chaos_from_env",
]
