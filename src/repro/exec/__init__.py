"""repro.exec — the sweep-execution subsystem.

Design-space sweeps (Figure 7's scheduler x AC-count grid and anything
larger) run through three pieces:

* :class:`~repro.exec.spec.SweepSpec` — a declarative grid that
  enumerates (system, scheduler, AC count, fault config, workload)
  cells,
* :func:`~repro.exec.runner.run_sweep` — a ``concurrent.futures``
  process-pool runner with chunked dispatch and per-cell timing,
* :class:`~repro.exec.cache.ResultCache` — a content-addressed on-disk
  cache (cell config + code-version salt, hashed to a JSON artifact of
  the :class:`~repro.sim.results.SimulationResult`) that makes repeated
  or resumed sweeps skip completed cells.

Parallel runs are bit-identical to serial runs; cache replays are
bit-identical to both.  The figure/table drivers in
:mod:`repro.analysis.experiments`, the ``sweep`` CLI command and the
benchmark harness all execute through this engine.
"""

from __future__ import annotations

from .cache import CODE_VERSION_SALT, ResultCache, canonical_json, cell_key
from .runner import (
    CellOutcome,
    SweepReport,
    cache_from_env,
    default_jobs,
    execute_cell,
    run_sweep,
)
from .spec import SweepCell, SweepSpec, WorkloadSpec

__all__ = [
    "WorkloadSpec",
    "SweepCell",
    "SweepSpec",
    "CODE_VERSION_SALT",
    "ResultCache",
    "canonical_json",
    "cell_key",
    "CellOutcome",
    "SweepReport",
    "execute_cell",
    "run_sweep",
    "default_jobs",
    "cache_from_env",
]
