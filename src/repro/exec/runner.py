"""Parallel, cache-backed execution of sweep cells.

The runner fans :class:`~repro.exec.spec.SweepCell` work out over a
``concurrent.futures`` process pool (``jobs`` workers, chunked
dispatch), measures per-cell wall time, and consults an optional
:class:`~repro.exec.cache.ResultCache` so completed cells are never
re-simulated.

Determinism contract: a cell is a *pure function* of its configuration.
Every worker builds its own platform, workload and simulator from the
cell alone (no state crosses process boundaries besides the cell
itself), and all models are seed-driven — so a parallel run is
bit-identical to a serial run, and both are bit-identical to a cache
replay.  ``tests/test_exec_determinism.py`` pins this down.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..sim.results import SimulationResult
from .cache import ResultCache
from .spec import SweepCell, SweepSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..obs.tracer import Tracer
    from .chaos import ChaosSpec
    from .journal import QuarantinedCell
    from .supervise import SupervisorPolicy

__all__ = [
    "CellOutcome",
    "SweepReport",
    "execute_cell",
    "timed_execute",
    "run_sweep",
    "default_jobs",
    "cache_from_env",
]


def default_jobs() -> int:
    """Worker count from the ``REPRO_JOBS`` environment (default 1)."""
    try:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    except ValueError:
        return 1
    return max(1, jobs)


def cache_from_env() -> Optional[ResultCache]:
    """A :class:`ResultCache` at ``REPRO_CACHE_DIR``, if that is set."""
    root = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return ResultCache(root) if root else None


def execute_cell(
    cell: SweepCell,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> SimulationResult:
    """Run one cell's simulation from scratch (no cache, no pool).

    ``tracer`` / ``metrics`` (see :mod:`repro.obs`) attach per-cell
    instrumentation to the simulator; the ``Software`` baseline has no
    fabric and ignores them.
    """
    from ..core.schedulers import get_scheduler
    from ..fabric.faults import BernoulliLoadFaults, RetryPolicy
    from ..h264.silibrary import build_atom_registry, build_si_library
    from ..sim.molen import MolenSimulator
    from ..sim.rispp import RisppSimulator
    from ..sim.software import simulate_software

    registry = build_atom_registry()
    library = build_si_library(registry)
    workload = cell.workload.build()
    if cell.system == "Software":
        return simulate_software(library, workload)
    fault_model = None
    if cell.fault_rate > 0.0:
        fault_model = BernoulliLoadFaults(
            cell.fault_rate, seed=cell.fault_seed
        )
    retry_policy = RetryPolicy(max_retries=cell.max_retries)
    if cell.system == "RISPP":
        scheduler_kwargs: Dict[str, Any] = {}
        if cell.scheduler == "PREFETCH":
            scheduler_kwargs = {
                "confidence": cell.prefetch_confidence,
                "budget": cell.prefetch_budget,
            }
        sim = RisppSimulator(
            library,
            registry,
            get_scheduler(cell.scheduler, **scheduler_kwargs),
            cell.num_acs,
            record_segments=cell.record_segments,
            fault_model=fault_model,
            retry_policy=retry_policy,
            tracer=tracer,
            metrics=metrics,
            engine=cell.engine,
        )
    else:  # Molen
        sim = MolenSimulator(
            library,
            registry,
            cell.num_acs,
            record_segments=cell.record_segments,
            fault_model=fault_model,
            retry_policy=retry_policy,
            tracer=tracer,
            metrics=metrics,
            engine=cell.engine,
        )
    return sim.run(workload)


def _timed_execute(cell: SweepCell) -> Tuple[Dict[str, Any], float]:
    """Worker entry point: run a cell, return (payload, seconds).

    Results travel as plain-JSON dictionaries rather than pickled
    objects, so exactly what a worker computed is exactly what the cache
    stores and what a serial run serializes — one representation for all
    three paths.
    """
    start = time.perf_counter()
    result = execute_cell(cell)
    payload = result.to_json_dict()
    return payload, time.perf_counter() - start


#: Public alias: the supervisor's worker processes run cells through the
#: exact same entry point as the plain pool, so supervised and bare runs
#: cannot drift apart.
timed_execute = _timed_execute


@dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-served) cell of a sweep."""

    cell: SweepCell
    result: SimulationResult
    #: Wall-clock seconds this cell cost *this* invocation: simulation
    #: time on a miss, artifact-read time on a hit.
    wall_time: float
    cache_hit: bool

    @property
    def label(self) -> str:
        return self.cell.label


@dataclass
class SweepReport:
    """Everything one sweep invocation produced, in cell order."""

    outcomes: List[CellOutcome]
    #: Wall-clock seconds of the whole invocation (dispatch included).
    elapsed: float = 0.0
    jobs: int = 1
    #: Cells the supervisor gave up on (empty for unsupervised runs —
    #: there, any failure propagates as an exception instead).
    quarantined: List["QuarantinedCell"] = field(default_factory=list)
    #: Whether the run drained after SIGINT/SIGTERM with cells pending.
    interrupted: bool = False
    #: Completed cells replayed from a ``--resume`` journal.
    resume_hits: int = 0
    #: Failed attempts that were re-queued by the supervisor.
    retries: int = 0

    def __iter__(self) -> Iterator[CellOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def results(self) -> List[SimulationResult]:
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for o in self.outcomes if not o.cache_hit)

    @property
    def total_wall_time(self) -> float:
        """Sum of per-cell wall times (the serial-equivalent cost)."""
        return sum(o.wall_time for o in self.outcomes)

    def result_for(self, cell: SweepCell) -> SimulationResult:
        for outcome in self.outcomes:
            if outcome.cell == cell:
                return outcome.result
        raise KeyError(f"no outcome for cell {cell.label}")

    def summary(self) -> str:
        """One-line accounting: cells, hits, wall time, parallel time."""
        text = (
            f"{len(self.outcomes)} cells ({self.cache_hits} cache hits, "
            f"{self.cache_misses} simulated), "
            f"{self.total_wall_time:.2f}s cell time in "
            f"{self.elapsed:.2f}s wall ({self.jobs} jobs)"
        )
        if self.resume_hits:
            text += f", {self.resume_hits} resumed"
        if self.retries:
            text += f", {self.retries} retries"
        if self.quarantined:
            text += f", {len(self.quarantined)} quarantined"
        if self.interrupted:
            text += ", INTERRUPTED"
        return text

    def failure_report(self) -> Dict[str, Any]:
        """Structured account of everything that did not go cleanly.

        This is what ``repro sweep`` writes next to the journal when a
        supervised run ends with quarantined cells or an interrupt, so
        operators (and CI) can triage without scraping stdout.
        """
        return {
            "interrupted": self.interrupted,
            "completed": len(self.outcomes),
            "retries": self.retries,
            "resume_hits": self.resume_hits,
            "quarantined": [q.to_json_dict() for q in self.quarantined],
        }

    def metrics(
        self, registry: Optional["MetricsRegistry"] = None
    ) -> "MetricsRegistry":
        """Sweep-level aggregates as a :class:`~repro.obs.metrics.MetricsRegistry`.

        Fills ``cells.total``, ``cache.hits`` / ``cache.misses``, the
        ``cache.hit_rate`` gauge and the ``cell.wall_seconds`` histogram
        (into ``registry`` or a fresh one).
        """
        from ..obs.metrics import MetricsRegistry

        registry = registry if registry is not None else MetricsRegistry()
        registry.counter("cells.total").inc(len(self.outcomes))
        registry.counter("cache.hits").inc(self.cache_hits)
        registry.counter("cache.misses").inc(self.cache_misses)
        registry.gauge("cache.hit_rate").set(
            self.cache_hits / len(self.outcomes) if self.outcomes else 0.0
        )
        hist = registry.histogram("cell.wall_seconds")
        for outcome in self.outcomes:
            hist.observe(outcome.wall_time)
        if self.quarantined or self.retries or self.resume_hits:
            registry.counter("supervisor.report.retries").inc(self.retries)
            registry.counter("supervisor.report.resume_hits").inc(
                self.resume_hits
            )
            registry.counter("supervisor.report.quarantined").inc(
                len(self.quarantined)
            )
        return registry


def _chunksize(num_tasks: int, jobs: int) -> int:
    """Chunk tasks so each worker sees a few batches (amortises IPC
    without serialising the tail behind one slow worker)."""
    return max(1, num_tasks // (jobs * 4))


def run_sweep(
    spec: Union[SweepSpec, Sequence[SweepCell]],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
    tracer_factory: Optional[Callable[[SweepCell], Any]] = None,
    on_trace: Optional[Callable[[SweepCell, Any], None]] = None,
    policy: Optional["SupervisorPolicy"] = None,
    journal_path: Optional[Union[str, Path]] = None,
    resume_from: Optional[Union[str, Path]] = None,
    chaos: Optional["ChaosSpec"] = None,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    fsync: bool = False,
) -> SweepReport:
    """Execute a sweep: every cell of ``spec``, cache-first, in parallel.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` or an explicit cell sequence.
    jobs:
        Worker processes; ``1`` runs serially in-process (no pool is
        spawned at all, keeping tracebacks and profiles simple).
    cache:
        Optional result cache; hits skip simulation entirely, misses are
        stored after execution.
    progress:
        Callback invoked once per finished cell, in completion order.
    tracer_factory:
        When given, every cell runs *serially in-process* with a fresh
        tracer built by ``tracer_factory(cell)`` attached, and the cache
        is bypassed for reads — traces cannot be served from stored
        results, and tracers cannot cross process boundaries.  Computed
        payloads are still written to the cache.
    on_trace:
        Callback invoked after each traced cell with ``(cell, tracer)``;
        typically exports the recorded events.
    policy / journal_path / resume_from / chaos / tracer / metrics:
        Supervision parameters; when any of them is given the sweep is
        delegated to :func:`repro.exec.supervise.run_supervised`, which
        adds per-cell timeouts, retries, quarantine, journaling and
        graceful shutdown on top of the same determinism contract.
        Mutually exclusive with ``tracer_factory`` (supervised cells run
        in worker processes, where tracers cannot follow).

    The returned report lists outcomes in *cell enumeration order*
    regardless of completion order, so downstream table/figure code can
    zip them against the spec.
    """
    supervised = (
        policy is not None
        or journal_path is not None
        or resume_from is not None
        or chaos is not None
    )
    if supervised:
        from ..errors import SweepError
        from .supervise import run_supervised

        if tracer_factory is not None:
            raise SweepError(
                "tracer_factory cannot be combined with supervision: "
                "supervised cells run in worker processes, where "
                "in-process tracers cannot follow"
            )
        return run_supervised(
            spec,
            jobs=jobs,
            cache=cache,
            policy=policy,
            journal_path=journal_path,
            resume_from=resume_from,
            chaos=chaos,
            progress=progress,
            tracer=tracer,
            metrics=metrics,
            fsync=fsync,
        )
    cells = list(spec.cells() if isinstance(spec, SweepSpec) else spec)
    jobs = max(1, int(jobs))
    started = time.perf_counter()
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    traced = tracer_factory is not None

    pending: List[Tuple[int, SweepCell]] = []
    for index, cell in enumerate(cells):
        if cache is not None and not traced:
            t0 = time.perf_counter()
            payload = cache.get(cell)
            if payload is not None:
                outcome = CellOutcome(
                    cell=cell,
                    result=SimulationResult.from_json_dict(payload),
                    wall_time=time.perf_counter() - t0,
                    cache_hit=True,
                )
                outcomes[index] = outcome
                if progress is not None:
                    progress(outcome)
                continue
        pending.append((index, cell))

    def finish(index: int, cell: SweepCell, payload: Dict[str, Any],
               seconds: float) -> None:
        if cache is not None:
            cache.put(cell, payload)
        outcome = CellOutcome(
            cell=cell,
            result=SimulationResult.from_json_dict(payload),
            wall_time=seconds,
            cache_hit=False,
        )
        outcomes[index] = outcome
        if progress is not None:
            progress(outcome)

    if traced:
        for index, cell in pending:
            tracer = tracer_factory(cell)
            t0 = time.perf_counter()
            result = execute_cell(cell, tracer=tracer)
            seconds = time.perf_counter() - t0
            if on_trace is not None:
                on_trace(cell, tracer)
            finish(index, cell, result.to_json_dict(), seconds)
    elif pending and jobs > 1 and len(pending) > 1:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            mapped = pool.map(
                _timed_execute,
                [cell for _, cell in pending],
                chunksize=_chunksize(len(pending), workers),
            )
            for (index, cell), (payload, seconds) in zip(pending, mapped):
                finish(index, cell, payload, seconds)
    else:
        for index, cell in pending:
            payload, seconds = _timed_execute(cell)
            finish(index, cell, payload, seconds)

    done = [o for o in outcomes if o is not None]
    assert len(done) == len(cells)
    return SweepReport(
        outcomes=done,
        elapsed=time.perf_counter() - started,
        jobs=jobs,
    )
