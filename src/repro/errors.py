"""Exception hierarchy for the RISPP reproduction library.

Every error raised by :mod:`repro` derives from :class:`RisppError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "RisppError",
    "AtomSpaceMismatchError",
    "UnknownAtomTypeError",
    "UnknownSpecialInstructionError",
    "InvalidMoleculeError",
    "InvalidScheduleError",
    "SelectionError",
    "FabricError",
    "CapacityError",
    "TransientLoadError",
    "ContainerFaultError",
    "SimulationError",
    "TraceError",
    "CalibrationError",
    "ObservabilityError",
    "SweepError",
    "JournalError",
    "ServiceError",
    "ServiceCrash",
    "RecoveryError",
]


class RisppError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AtomSpaceMismatchError(RisppError):
    """Two molecules from different :class:`~repro.core.molecule.AtomSpace`
    instances were combined.

    The lattice operators (union, intersection, comparison, missing-atoms)
    are only defined between molecules over the *same* set of atom types.
    """


class UnknownAtomTypeError(RisppError, KeyError):
    """An atom-type name was looked up that is not part of the atom space."""


class UnknownSpecialInstructionError(RisppError, KeyError):
    """A Special Instruction name was looked up that the library does not
    define."""


class InvalidMoleculeError(RisppError, ValueError):
    """A molecule definition is malformed (negative counts, wrong arity,
    duplicate molecule names within one SI, ...)."""


class InvalidScheduleError(RisppError, ValueError):
    """A scheduling function violates condition (2) of the paper: the
    multiset of loaded unit molecules does not equal the atoms required to
    reach ``sup(M)`` from the initially available atoms."""


class SelectionError(RisppError, ValueError):
    """Molecule selection could not produce a feasible selection (e.g. the
    atom-container budget is negative)."""


class FabricError(RisppError):
    """Base class for errors of the reconfigurable-fabric substrate."""


class CapacityError(FabricError):
    """An atom load was requested but no atom container is free or
    evictable.

    The molecule selection step guarantees ``NA <= #ACs`` for the atoms of
    the current hot spot, so hitting this error indicates either a
    scheduler bug (loading atoms outside ``sup(M)``) or an eviction policy
    that refuses to release stale atoms.
    """


class TransientLoadError(FabricError):
    """A bitstream write failed transiently (CRC/SelectMap error).

    Unlike the fail-fast :class:`FabricError`s this is a *recoverable*
    condition: the affected container survives and the load may be
    retried under a :class:`~repro.fabric.faults.RetryPolicy`.  It
    escapes to the caller only when fault injection is configured with
    ``on_exhausted="raise"`` or when a manual injection call is misused.
    """


class ContainerFaultError(FabricError):
    """An Atom Container failed permanently (wear-out / hard fault).

    The container can never be loaded again; the fabric shrinks its
    usable-AC count and the run-time system re-plans against the reduced
    budget.  Raised only for *misuse* of the fault API (killing an
    unknown or already-dead container) — the simulated fault itself is
    handled gracefully and never propagates.
    """


class SimulationError(RisppError):
    """The behavioural simulator reached an inconsistent state."""


class TraceError(RisppError, ValueError):
    """A workload trace is malformed (negative counts, unknown SI names,
    shape mismatches between the count matrix and the SI list, ...)."""


class CalibrationError(RisppError, ValueError):
    """A calibration constant was given an out-of-range value."""


class ObservabilityError(RisppError, ValueError):
    """The observability layer was misused or fed malformed data.

    Raised for unknown trace-event kinds, event logs with an unsupported
    schema version, unwritable trace outputs, Chrome-trace validation
    failures and inconsistent replay inputs.  Never raised by a run that
    merely *records* — emission is infallible by design.
    """


class SweepError(RisppError):
    """The sweep execution layer was misconfigured or misused.

    Covers invalid supervisor policies (negative timeouts, zero attempt
    budgets), malformed chaos specifications, and sweep driver misuse.
    Individual *cell* failures never raise this — the supervisor's whole
    point is to quarantine them without aborting the grid.
    """


class ServiceError(RisppError):
    """The multi-tenant fabric service was misconfigured or violated an
    internal invariant.

    Covers malformed tenant specifications (non-positive rates, unknown
    priority classes, empty fleets) and arbiter book-keeping bugs (an
    admitted request that neither completed nor was accounted for).
    Individual *request* failures never raise this — overload is handled
    by shedding at admission and degraded answers, not by exceptions.
    """


class ServiceCrash(ServiceError):
    """The service was deliberately crashed by the chaos harness.

    Raised by the in-process ``crash_mode="raise"`` variant of the
    crash injector (the SIGKILL variant never raises — the process is
    simply gone).  Tests catch this where a real deployment would see a
    dead process, then exercise ``--recover`` on what is left on disk.
    """


class RecoveryError(ServiceError):
    """Crash recovery could not reproduce the journaled timeline.

    Raised when re-execution from a restored snapshot (or from scratch)
    diverges from the on-disk journal tail, or when the journal being
    recovered is structurally unusable (bad header, wrong salt or
    format, config fingerprint mismatch).  Divergence means the journal
    was written by different code, config or cache state — continuing
    would silently fork history, so the recovery refuses instead.
    """


class JournalError(SweepError):
    """A sweep journal could not be trusted.

    Raised when a ``--resume`` journal is unreadable, structurally
    corrupt beyond its final (possibly truncated) line, or was written
    under a different code-version salt or journal format — replaying
    its payloads would not be bit-identical to a fresh run.
    """
