"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro table1            # SI inventory (Table 1)
    python -m repro table2            # speedup table (Table 2)
    python -m repro table3            # scheduler hardware (Table 3)
    python -m repro fig2              # upgrade motivation (Figure 2)
    python -m repro fig4              # schedule example (Figure 4)
    python -m repro fig7              # scheduler sweep (Figure 7)
    python -m repro fig8              # HEF detail (Figure 8)
    python -m repro all               # everything above

The environment variable ``REPRO_FRAMES`` scales the workload of the
sweep-based experiments (default 40; the paper uses 140).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .analysis import (
    ascii_plot_fig7,
    format_fig7_table,
    format_figure2,
    format_figure4,
    format_figure8,
    format_table1,
    format_table2,
    format_table3,
    run_figure2,
    run_figure4,
    run_figure7,
    run_figure8,
)
from .analysis.experiments import default_scale
from .h264.silibrary import build_si_library

__all__ = ["main"]


def _cmd_table1(args: argparse.Namespace) -> str:
    return format_table1(build_si_library())


def _cmd_table3(args: argparse.Namespace) -> str:
    return format_table3()


def _cmd_fig2(args: argparse.Namespace) -> str:
    return format_figure2(run_figure2(num_acs=args.acs))


def _cmd_fig4(args: argparse.Namespace) -> str:
    return format_figure4(run_figure4())


def _cmd_fig8(args: argparse.Namespace) -> str:
    return format_figure8(run_figure8(num_acs=args.acs))


class _SweepCache:
    """Figure 7 feeds both fig7 and table2; run it at most once."""

    def __init__(self) -> None:
        self.result = None

    def get(self, progress: bool = True):
        if self.result is None:
            self.result = run_figure7(
                scale=default_scale(), progress=progress
            )
        return self.result


_SWEEP = _SweepCache()


def _cmd_fig7(args: argparse.Namespace) -> str:
    result = _SWEEP.get()
    return format_fig7_table(result) + "\n\n" + ascii_plot_fig7(result)


def _cmd_table2(args: argparse.Namespace) -> str:
    return format_table2(_SWEEP.get())


_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Run-time System for "
            "an Extensible Embedded Processor with Dynamic Instruction "
            "Set' (DATE 2008)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(_COMMANDS) + ["all"],
        help="which experiments to regenerate",
    )
    parser.add_argument(
        "--acs",
        type=int,
        default=10,
        help="Atom-Container count for fig2/fig8 (default 10)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    names: List[str] = []
    for name in args.experiments:
        if name == "all":
            names.extend(sorted(_COMMANDS))
        else:
            names.append(name)
    seen = set()
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        print(_COMMANDS[name](args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
