"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro table1            # SI inventory (Table 1)
    python -m repro table2            # speedup table (Table 2)
    python -m repro table3            # scheduler hardware (Table 3)
    python -m repro fig2              # upgrade motivation (Figure 2)
    python -m repro fig4              # schedule example (Figure 4)
    python -m repro fig7              # scheduler sweep (Figure 7)
    python -m repro fig8              # HEF detail (Figure 8)
    python -m repro all               # everything above (paper experiments)

    python -m repro simulate          # one run, fault injection optional
    python -m repro sweep             # AC sweep, fault injection optional

    python -m repro lint              # static-analysis gate (RL001-RL007)
    python -m repro serve             # multi-tenant fabric service soak

``serve`` runs the multi-tenant fabric arbitration service
(:mod:`repro.service`): a synthetic tenant fleet submits deadline-tagged
hot-spot requests into a deterministic virtual-clock arbiter with
admission control, overload shedding, priority preemption and
circuit-breaker degradation.  It has its own flag set (``--tenants``,
``--duration``, ``--service-acs``, ``--kills``, ``--journal``, ...) —
see ``python -m repro serve --help``.  Two invocations with identical
flags and a cold cache produce bit-identical journals and digests.

``lint`` is the repository's AST-based invariant analyzer
(:mod:`repro.lint`): determinism, tracer guards, hygiene, event-schema
drift and division-free HEF comparisons.  It takes its own flags
(``--format json``, ``--select``, ``--write-fingerprint``, ...) — see
``python -m repro lint --help`` — and exits nonzero on findings.

The ``simulate`` and ``sweep`` commands accept ``--fault-rate``,
``--fault-seed`` and ``--max-retries`` to exercise the fabric's
fault-injection and graceful-degradation path; their reports include the
fault/retry counters.

Sweep-shaped commands (``sweep``, ``fig2``, ``fig7``, ``fig8``,
``table2``) execute through the parallel sweep engine: ``--jobs N`` fans
the cells out over a process pool, ``--cache-dir PATH`` enables the
content-addressed result cache (repeated or resumed invocations skip
completed cells), and ``--no-cache`` forces fresh simulation.  Parallel
results are bit-identical to serial ones.

``sweep`` additionally supports *supervised* execution
(:mod:`repro.exec.supervise`): ``--timeout SECONDS`` kills and retries
cells that hang, ``--max-attempts N`` bounds the retries before a cell
is quarantined, ``--journal PATH`` appends a JSONL journal of cell
outcomes, ``--resume JOURNAL`` replays a killed/interrupted sweep
bit-identically and re-runs only what is missing, and ``--chaos SPEC``
injects worker failures for testing (``<label-glob>:<mode>[:<attempts>]``
with modes ``hang``/``crash``/``raise``).  Supervised exit codes: ``0``
clean, ``1`` error, ``3`` completed with quarantined cells, ``4``
interrupted (SIGINT/SIGTERM) after draining in-flight cells.

The environment variables ``REPRO_FRAMES`` (workload frames; default 40,
paper 140), ``REPRO_ENGINE`` (trace-replay engine for ``simulate`` and
``sweep``: ``reference``/``vector``/``auto``; the engines are
bit-identical), ``REPRO_JOBS`` (default worker count),
``REPRO_CACHE_DIR`` (default cache location), ``REPRO_TIMEOUT`` /
``REPRO_MAX_ATTEMPTS`` (supervision for any sweep-shaped command,
including the figure drivers) and ``REPRO_CHAOS`` (chaos spec)
configure the same knobs.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .analysis import (
    ascii_plot_fig7,
    format_fig7_table,
    format_figure2,
    format_figure4,
    format_figure8,
    format_table1,
    format_table2,
    format_table3,
    run_figure2,
    run_figure4,
    run_figure7,
    run_figure8,
)
from .analysis.experiments import ExperimentScale, default_scale
from .core.schedulers import available_schedulers, get_scheduler
from .exec import (
    ResultCache,
    SupervisorPolicy,
    SweepSpec,
    WorkloadSpec,
    cache_from_env,
    chaos_from_env,
    default_jobs,
    parse_chaos_spec,
    policy_from_env,
    run_sweep,
)
from .errors import ObservabilityError, RisppError, ServiceError, SweepError
from .fabric.faults import BernoulliLoadFaults, FaultModel, RetryPolicy
from .h264.silibrary import build_atom_registry, build_si_library
from .obs import TRACE_FORMATS, RecordingTracer, export_events
from .sim.engine import ENGINES
from .sim.rispp import RisppSimulator
from .workload.adversarial import generate_adversarial_workload
from .workload.model import generate_workload

__all__ = ["main"]


def _probability(text: str) -> float:
    """argparse type: a float in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be within [0, 1], got {text}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if value <= 0.0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _ac_count_list(text: str) -> List[int]:
    """argparse type: comma-separated positive AC counts."""
    counts = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            value = int(part)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"not an integer AC count: {part!r}"
            )
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"AC count must be >= 0, got {part}"
            )
        counts.append(value)
    if not counts:
        raise argparse.ArgumentTypeError("empty AC-count list")
    return counts


def _engine_setup(args: argparse.Namespace):
    """(jobs, cache) from the CLI flags, falling back to the env."""
    jobs = args.jobs if args.jobs else default_jobs()
    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    else:
        cache = cache_from_env()
    return jobs, cache


def _supervision_setup(args: argparse.Namespace):
    """(policy, journal_path, resume_from, chaos) from flags/env.

    All four are ``None`` when nothing asks for supervision — the sweep
    then runs on the plain pool exactly as before.
    """
    chaos = parse_chaos_spec(args.chaos) if args.chaos else chaos_from_env()
    flagged = bool(
        args.timeout or args.max_attempts or args.journal or args.resume
    )
    policy: Optional[SupervisorPolicy] = None
    if args.timeout or args.max_attempts:
        policy = SupervisorPolicy(
            timeout=args.timeout if args.timeout else None,
            max_attempts=args.max_attempts if args.max_attempts else 3,
        )
    elif not flagged:
        policy = policy_from_env()
    if policy is None and not flagged and not chaos:
        return None, None, None, None
    return (
        policy,
        args.journal or None,
        args.resume or None,
        chaos if chaos else None,
    )


def _fault_setup(args: argparse.Namespace):
    """Fault model + retry policy from the CLI flags (None when perfect)."""
    fault_model: Optional[FaultModel] = None
    if args.fault_rate > 0.0:
        fault_model = BernoulliLoadFaults(
            args.fault_rate, seed=args.fault_seed
        )
    retry_policy = RetryPolicy(max_retries=args.max_retries)
    return fault_model, retry_policy


def _fault_report(result) -> str:
    return (
        f"  loads: {result.loads_started} started, "
        f"{result.loads_completed} completed, "
        f"{result.loads_failed} failed, {result.loads_retried} retried, "
        f"{result.loads_abandoned} abandoned\n"
        f"  dead ACs: {result.dead_containers}   "
        f"degraded: {result.degraded_cycles:,} cycles "
        f"({result.degraded_fraction:.1%} of the run)"
    )


def _trace_cell_path(base: str, label: str) -> Path:
    """Per-cell trace path: ``out.json`` -> ``out.<label>.json``."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", label)
    path = Path(base)
    return path.with_name(f"{path.stem}.{slug}{path.suffix or '.json'}")


def _scheduler_kwargs(args: argparse.Namespace) -> dict:
    """Per-scheduler constructor knobs from the CLI namespace."""
    if args.scheduler == "PREFETCH":
        return {
            "confidence": args.prefetch_confidence,
            "budget": args.prefetch_budget,
        }
    return {}


def _build_workload(args: argparse.Namespace, frames: int):
    """The simulate-command workload for the selected generator."""
    if args.workload == "adversarial":
        return generate_adversarial_workload(
            num_phases=frames * 3, seed=2008, flip_rate=args.flip_rate
        )
    return generate_workload(num_frames=frames, seed=2008)


def _cmd_simulate(args: argparse.Namespace) -> str:
    registry = build_atom_registry()
    library = build_si_library(registry)
    frames = args.frames if args.frames else default_scale().frames
    workload = _build_workload(args, frames)
    fault_model, retry_policy = _fault_setup(args)
    tracer = RecordingTracer() if args.trace_out else None
    sim = RisppSimulator(
        library,
        registry,
        get_scheduler(args.scheduler, **_scheduler_kwargs(args)),
        args.acs,
        fault_model=fault_model,
        retry_policy=retry_policy,
        tracer=tracer,
        engine=args.engine,
    )
    result = sim.run(workload)
    lines = [
        f"Simulation: {result.summary()}",
        f"  workload: {frames} frames, fault rate {args.fault_rate}, "
        f"fault seed {args.fault_seed}, max retries {args.max_retries}",
        _fault_report(result),
    ]
    if result.prefetch_issued:
        lines.append(
            f"  prefetch: {result.prefetch_issued} issued, "
            f"{result.prefetch_hits} hits, {result.prefetch_wasted} "
            f"wasted ({result.prefetch_wasted_bus_cycles} bus cycles)"
        )
    if tracer is not None:
        export_events(list(tracer), args.trace_out, args.trace_format)
        lines.append(
            f"  trace: {len(tracer)} events -> {args.trace_out} "
            f"({args.trace_format})"
        )
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> str:
    frames = args.frames if args.frames else default_scale().frames
    if args.ac_list is not None:
        ac_counts = args.ac_list
    else:
        ac_counts = list(default_scale().ac_counts)
    spec = SweepSpec(
        schedulers=(args.scheduler,),
        ac_counts=tuple(ac_counts),
        workload=WorkloadSpec(
            frames=frames,
            seed=2008,
            generator=args.workload,
            flip_rate=args.flip_rate,
        ),
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        max_retries=args.max_retries,
        engine=args.engine,
        prefetch_confidence=args.prefetch_confidence,
        prefetch_budget=args.prefetch_budget,
    )
    jobs, cache = _engine_setup(args)
    policy, journal_path, resume_from, chaos = _supervision_setup(args)
    supervised = any(
        v is not None for v in (policy, journal_path, resume_from, chaos)
    )
    trace_lines: List[str] = []
    if args.trace_out and supervised:
        raise SweepError(
            "--trace-out cannot be combined with supervision flags: "
            "supervised cells run in worker processes, where in-process "
            "tracers cannot follow"
        )
    if args.trace_out:
        # Per-cell traces force a serial in-process run (tracers cannot
        # cross process boundaries, and a cache hit would skip events).
        def _tracer_factory(cell):
            return RecordingTracer()

        def _on_trace(cell, tracer):
            path = _trace_cell_path(args.trace_out, cell.label)
            export_events(list(tracer), path, args.trace_format)
            trace_lines.append(
                f"  trace: {len(tracer)} events -> {path} "
                f"({args.trace_format})"
            )

        report = run_sweep(
            spec,
            jobs=jobs,
            cache=cache,
            tracer_factory=_tracer_factory,
            on_trace=_on_trace,
        )
    elif supervised:
        report = run_sweep(
            spec,
            jobs=jobs,
            cache=cache,
            policy=policy,
            journal_path=journal_path,
            resume_from=resume_from,
            chaos=chaos,
            fsync=args.fsync,
        )
    else:
        report = run_sweep(spec, jobs=jobs, cache=cache)
    lines = [
        f"AC sweep ({args.scheduler}, {frames} frames, fault rate "
        f"{args.fault_rate}, seed {args.fault_seed}, max retries "
        f"{args.max_retries}, {jobs} jobs, cache "
        f"{'off' if cache is None else cache.root})",
        f"{'ACs':>4s} {'Mcycles':>10s} {'failed':>7s} {'retried':>8s} "
        f"{'abandoned':>10s} {'dead':>5s} {'degraded':>9s} "
        f"{'wall':>9s} {'source':>6s}",
    ]
    for outcome in report:
        result = outcome.result
        lines.append(
            f"{outcome.cell.num_acs:>4d} {result.total_mcycles:>10.2f} "
            f"{result.loads_failed:>7d} {result.loads_retried:>8d} "
            f"{result.loads_abandoned:>10d} {result.dead_containers:>5d} "
            f"{result.degraded_fraction:>9.1%} "
            f"{outcome.wall_time * 1e3:>7.1f}ms "
            f"{'cache' if outcome.cache_hit else 'run':>6s}"
        )
    lines.extend(trace_lines)
    for quarantined in report.quarantined:
        lines.append(
            f"QUARANTINED {quarantined.label}: {quarantined.failure} "
            f"after {quarantined.attempts} attempt(s) — "
            f"{quarantined.message}"
        )
    if report.interrupted:
        lines.append(
            "INTERRUPTED: sweep drained after SIGINT/SIGTERM; "
            "re-run with --resume to finish the remaining cells"
        )
    if journal_path and (report.quarantined or report.interrupted):
        failures_path = Path(str(journal_path) + ".failures.json")
        failures_path.write_text(
            json.dumps(report.failure_report(), indent=1, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        lines.append(f"  failure report -> {failures_path}")
    if report.quarantined:
        args._exit_code = 3
    elif report.interrupted:
        args._exit_code = 4
    lines.append(report.summary())
    return "\n".join(lines)


def _cmd_prefetch(args: argparse.Namespace) -> str:
    from .analysis.experiments import run_prefetch_comparison

    frames = args.frames if args.frames else default_scale().frames
    if args.ac_list is not None:
        ac_counts = tuple(args.ac_list)
    else:
        ac_counts = (4, 6, 10, 16)
    jobs, cache = _engine_setup(args)
    result = run_prefetch_comparison(
        ac_counts=ac_counts,
        scale=ExperimentScale(frames=frames),
        confidence=args.prefetch_confidence,
        budget=args.prefetch_budget,
        workload_generator=args.workload,
        flip_rate=args.flip_rate,
        jobs=jobs,
        cache=cache,
    )
    return result.summary()


def _cmd_table1(args: argparse.Namespace) -> str:
    return format_table1(build_si_library())


def _cmd_table3(args: argparse.Namespace) -> str:
    return format_table3()


def _cmd_fig2(args: argparse.Namespace) -> str:
    jobs, cache = _engine_setup(args)
    return format_figure2(
        run_figure2(num_acs=args.acs, jobs=jobs, cache=cache)
    )


def _cmd_fig4(args: argparse.Namespace) -> str:
    return format_figure4(run_figure4())


def _cmd_fig8(args: argparse.Namespace) -> str:
    jobs, cache = _engine_setup(args)
    return format_figure8(
        run_figure8(num_acs=args.acs, jobs=jobs, cache=cache)
    )


class _SweepCache:
    """Figure 7 feeds both fig7 and table2; run it at most once."""

    def __init__(self) -> None:
        self.result = None

    def get(self, args: argparse.Namespace, progress: bool = True):
        if self.result is None:
            jobs, cache = _engine_setup(args)
            self.result = run_figure7(
                scale=default_scale(), progress=progress,
                jobs=jobs, cache=cache,
            )
        return self.result


_SWEEP = _SweepCache()


def _fig7_footer(result) -> str:
    if result.report is None:
        return ""
    return "\n\nsweep: " + result.report.summary()


def _cmd_fig7(args: argparse.Namespace) -> str:
    result = _SWEEP.get(args)
    return (
        format_fig7_table(result) + "\n\n" + ascii_plot_fig7(result)
        + _fig7_footer(result)
    )


def _cmd_table2(args: argparse.Namespace) -> str:
    return format_table2(_SWEEP.get(args))


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the multi-tenant fabric arbitration service: a "
            "deterministic virtual-clock soak of N tenants sharing the "
            "reconfigurable fabric through admission control, priority "
            "arbitration, overload shedding and circuit-breaker "
            "degradation."
        ),
    )
    parser.add_argument(
        "--tenants",
        type=_non_negative_int,
        default=8,
        help="synthetic fleet size (default 8)",
    )
    parser.add_argument(
        "--duration",
        type=_non_negative_int,
        default=20_000,
        help="virtual ticks of request arrivals (default 20000; the "
        "run then drains every admitted request)",
    )
    parser.add_argument(
        "--service-acs",
        type=_non_negative_int,
        default=8,
        help="Atom Containers of the shared fabric (default 8)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=2008,
        help="service seed: fleet shape, request streams and backoff "
        "jitter (default 2008)",
    )
    parser.add_argument(
        "--mean-gap",
        type=_non_negative_int,
        default=160,
        help="mean per-tenant inter-arrival gap in ticks (default 160; "
        "lower it to push the fleet past fabric capacity)",
    )
    parser.add_argument(
        "--deadline-slack",
        type=_non_negative_int,
        default=600,
        help="request deadline offset in ticks (default 600)",
    )
    parser.add_argument(
        "--variants",
        type=_non_negative_int,
        default=4,
        help="distinct workload variants per tenant (default 4; higher "
        "means fewer repeated requests and fewer cache hits)",
    )
    parser.add_argument(
        "--kills",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help="inject N permanent container faults (a fault storm; "
        "default 0)",
    )
    parser.add_argument(
        "--kill-at",
        type=_non_negative_int,
        default=0,
        metavar="TICK",
        help="first fault's tick (default: duration // 4)",
    )
    parser.add_argument(
        "--kill-spacing",
        type=_non_negative_int,
        default=20,
        metavar="TICKS",
        help="gap between storm faults (default 20; keep it inside the "
        "breaker window so the storm actually trips the breaker)",
    )
    parser.add_argument(
        "--journal",
        default="",
        metavar="PATH",
        help="write the canonical JSONL service journal to PATH",
    )
    parser.add_argument(
        "--snapshot-every",
        type=_non_negative_int,
        default=0,
        metavar="TICKS",
        help="write a recovery snapshot every N virtual ticks "
        "(sidecar files under <journal>.snap/; default 0 = disabled; "
        "needs --journal)",
    )
    parser.add_argument(
        "--recover",
        action="store_true",
        help="resume a crashed run from --journal (and its snapshots) "
        "instead of starting fresh; every other flag must match the "
        "crashed invocation",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every journal line and snapshot to stable storage "
        "(survives power loss, not just process death)",
    )
    parser.add_argument(
        "--reconfig-at",
        action="append",
        default=[],
        metavar="TICK:ACTION[:ARG]",
        help="schedule a live reconfiguration (repeatable): "
        "TICK:tenant_join:NAME, TICK:tenant_leave:NAME, "
        "TICK:ac_add[:COUNT], TICK:ac_remove[:COUNT]",
    )
    parser.add_argument(
        "--chaos-kill-at",
        type=_non_negative_int,
        default=0,
        metavar="TICK",
        help="chaos harness: SIGKILL the process just before the first "
        "event at or after TICK (0 = disabled; recover afterwards "
        "with --recover)",
    )
    parser.add_argument(
        "--report-json",
        default="",
        metavar="PATH",
        help="write the full structured report (per-tenant stats, shed "
        "taxonomy, digests) as JSON to PATH",
    )
    parser.add_argument(
        "--cache-dir",
        default="",
        help="content-addressed result cache directory (default: "
        "REPRO_CACHE_DIR; a warm cache turns repeats into "
        "admission-free hits)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any configured result cache (in-run answer reuse "
        "still applies)",
    )
    parser.add_argument(
        "--digest-only",
        action="store_true",
        help="print only the service digest (for determinism checks)",
    )
    return parser


def serve_main(argv: List[str]) -> int:
    """``repro serve``: run the fabric service and report; exit 0/1."""
    import dataclasses as _dataclasses

    from .obs.metrics import MetricsRegistry
    from .service import (
        ServiceConfig,
        derive_join_tenant,
        make_tenant_fleet,
        parse_reconfig_spec,
        recover_service,
        run_service,
    )

    args = _serve_parser().parse_args(argv)
    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    else:
        cache = cache_from_env()
    kill_at = args.kill_at if args.kill_at else args.duration // 4
    fault_ticks = tuple(
        kill_at + index * args.kill_spacing for index in range(args.kills)
    )
    metrics = MetricsRegistry()
    try:
        if (args.recover or args.chaos_kill_at) and not args.journal:
            raise ServiceError(
                "--recover and --chaos-kill-at need --journal"
            )
        control_events = []
        for text in args.reconfig_at:
            event = parse_reconfig_spec(text)
            if event.action == "tenant_join":
                event = _dataclasses.replace(
                    event,
                    spec=derive_join_tenant(event.name, args.seed),
                )
            control_events.append(event)
        fleet = make_tenant_fleet(
            args.tenants,
            seed=args.seed,
            mean_gap=args.mean_gap,
            deadline_slack=args.deadline_slack,
            variants=args.variants,
        )
        config = ServiceConfig(
            num_acs=args.service_acs,
            duration=args.duration,
            seed=args.seed,
            fault_ticks=fault_ticks,
            snapshot_every=args.snapshot_every,
        )
        if args.recover:
            report = recover_service(
                fleet,
                config,
                cache=cache,
                metrics=metrics,
                journal_path=args.journal,
                control_events=control_events,
                fsync=args.fsync,
            )
        else:
            report = run_service(
                fleet,
                config,
                cache=cache,
                metrics=metrics,
                journal_path=args.journal or None,
                control_events=control_events,
                crash_at_tick=args.chaos_kill_at or None,
                fsync=args.fsync,
            )
    except RisppError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.digest_only:
        print(report.service_digest())
    else:
        print(report.summary())
        if args.journal:
            print(f"  journal -> {args.journal}")
    if args.report_json:
        Path(args.report_json).write_text(
            json.dumps(report.to_json_dict(), indent=1, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        if not args.digest_only:
            print(f"  report -> {args.report_json}")
    return 0


_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
}

#: Commands outside the paper-reproduction set; not part of ``all``.
_EXTRA_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "prefetch": _cmd_prefetch,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Run-time System for "
            "an Extensible Embedded Processor with Dynamic Instruction "
            "Set' (DATE 2008)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(_COMMANDS) + sorted(_EXTRA_COMMANDS) + ["all"],
        help="which experiments to regenerate",
    )
    parser.add_argument(
        "--acs",
        type=_non_negative_int,
        default=10,
        help="Atom-Container count for fig2/fig8/simulate (default 10)",
    )
    parser.add_argument(
        "--scheduler",
        default="HEF",
        choices=sorted(available_schedulers()),
        help="atom scheduler for simulate/sweep (default HEF)",
    )
    parser.add_argument(
        "--frames",
        type=_non_negative_int,
        default=0,
        help="workload frames for simulate/sweep (default: REPRO_FRAMES)",
    )
    parser.add_argument(
        "--ac-list",
        type=_ac_count_list,
        default=None,
        help="comma-separated AC counts for sweep (default: paper sweep)",
    )
    parser.add_argument(
        "--engine",
        default=os.environ.get("REPRO_ENGINE", "reference"),
        choices=sorted(ENGINES),
        help="trace-replay engine for simulate/sweep: the reference "
        "per-span loop, the vectorized struct-of-arrays fast path, or "
        "auto (vector when untraced, reference otherwise); the engines "
        "are bit-identical, so results and cache keys do not change "
        "(default: REPRO_ENGINE or reference)",
    )
    parser.add_argument(
        "--jobs",
        type=_non_negative_int,
        default=0,
        help="worker processes for sweep-shaped commands "
        "(default: REPRO_JOBS or 1; parallel runs are bit-identical "
        "to serial ones)",
    )
    parser.add_argument(
        "--cache-dir",
        default="",
        help="content-addressed result cache directory (default: "
        "REPRO_CACHE_DIR; repeated sweeps skip completed cells)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any configured result cache and simulate fresh",
    )
    parser.add_argument(
        "--trace-out",
        default="",
        metavar="PATH",
        help="write a run trace for simulate/sweep; sweep writes one "
        "file per cell (PATH gets a cell-label suffix) and runs "
        "serially in-process",
    )
    parser.add_argument(
        "--trace-format",
        default="json",
        choices=TRACE_FORMATS,
        help="trace output format: versioned JSON event log, Chrome "
        "trace-event JSON (chrome://tracing / Perfetto), or a plain-"
        "text timeline (default json)",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=0.0,
        metavar="SECONDS",
        help="supervised sweep: per-cell wall-clock budget; a cell past "
        "its deadline is killed and retried (default: REPRO_TIMEOUT "
        "or none)",
    )
    parser.add_argument(
        "--max-attempts",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help="supervised sweep: attempts per cell before quarantine "
        "(default: REPRO_MAX_ATTEMPTS or 3)",
    )
    parser.add_argument(
        "--journal",
        default="",
        metavar="PATH",
        help="supervised sweep: append a JSONL journal of cell outcomes "
        "(feeds --resume; failures also land in PATH.failures.json)",
    )
    parser.add_argument(
        "--resume",
        default="",
        metavar="JOURNAL",
        help="supervised sweep: replay completed cells from a previous "
        "journal bit-identically and run only what is missing",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="supervised sweep: fsync every journal commit line "
        "(completed/quarantined/interrupted) to stable storage",
    )
    parser.add_argument(
        "--chaos",
        default="",
        metavar="SPEC",
        help="supervised sweep: inject worker failures for testing — "
        "comma-separated '<label-glob>:<mode>[:<attempts>]' with modes "
        "hang/crash/raise (default: REPRO_CHAOS)",
    )
    parser.add_argument(
        "--prefetch-confidence",
        type=_probability,
        default=0.6,
        help="PREFETCH scheduler: transition-predictor confidence "
        "required before speculating; 0 disables speculation and makes "
        "PREFETCH behave exactly like HEF (default 0.6)",
    )
    parser.add_argument(
        "--prefetch-budget",
        type=_non_negative_int,
        default=4,
        help="PREFETCH scheduler: maximum speculative atom loads per "
        "hot spot; 0 disables speculation (default 4)",
    )
    parser.add_argument(
        "--workload",
        default="h264",
        choices=("h264", "adversarial"),
        help="trace generator for simulate/sweep: the calibrated H.264 "
        "model, or seeded phase-misprediction traces that stress the "
        "PREFETCH transition predictor (default h264)",
    )
    parser.add_argument(
        "--flip-rate",
        type=_probability,
        default=0.25,
        help="adversarial workload: per-phase probability that the next "
        "hot spot deviates from the dominant ME->EE->LF cycle "
        "(default 0.25)",
    )
    parser.add_argument(
        "--fault-rate",
        type=_probability,
        default=0.0,
        help="transient bitstream-load failure probability (default 0)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=2008,
        help="seed of the fault schedule (default 2008)",
    )
    parser.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=3,
        help="retry budget per failed load (default 3)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The lint gate has its own flag set and exit-code contract;
        # dispatch before the experiment parser sees the arguments.
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        # Same early dispatch for the fabric service: its flag set is
        # disjoint from the experiment commands.
        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    names: List[str] = []
    for name in args.experiments:
        if name == "all":
            names.extend(sorted(_COMMANDS))
        else:
            names.append(name)
    seen = set()
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        command = _COMMANDS.get(name) or _EXTRA_COMMANDS[name]
        try:
            print(command(args))
        except (ObservabilityError, SweepError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print()
    # Supervised sweeps flag degraded-but-successful completion through
    # the namespace: 3 = quarantined cells present, 4 = interrupted.
    return getattr(args, "_exit_code", 0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
