"""Quantisation of transform coefficients.

A simplified H.264-style scalar quantiser: the step size doubles every
six QP values (``Qstep = 0.625 * 2^(QP/6)``), applied uniformly to the
4x4 core-transform coefficients.  The paper's run-time system never
looks inside the quantiser — only the *number* of (I)DCT SI executions
matters — so the per-frequency scaling matrices of the standard are
deliberately omitted (documented substitution).
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError

__all__ = ["quant_step", "quantise4x4", "dequantise4x4"]


def quant_step(qp: int) -> float:
    """H.264 quantisation step size for a given QP (0..51)."""
    if not 0 <= qp <= 51:
        raise TraceError(f"QP must be in 0..51, got {qp}")
    return 0.625 * (2.0 ** (qp / 6.0))


def quantise4x4(coefficients: np.ndarray, qp: int) -> np.ndarray:
    """Quantise 4x4 transform coefficients (round-to-nearest).

    The forward core transform scales coefficients by up to 16 (DC), so
    the effective step includes that gain; we keep the plain step for
    simplicity — only reconstruction *quality*, not system behaviour,
    depends on it.
    """
    step = quant_step(qp)
    c = np.asarray(coefficients, dtype=np.int64)
    if c.shape != (4, 4):
        raise TraceError(f"quantise4x4 expects 4x4, got {c.shape}")
    return np.rint(c / step).astype(np.int64)


def dequantise4x4(levels: np.ndarray, qp: int) -> np.ndarray:
    """Reconstruct coefficients from quantised levels."""
    step = quant_step(qp)
    lvl = np.asarray(levels, dtype=np.int64)
    if lvl.shape != (4, 4):
        raise TraceError(f"dequantise4x4 expects 4x4, got {lvl.shape}")
    return np.rint(lvl * step).astype(np.int64)
