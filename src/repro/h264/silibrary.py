"""The H.264 encoder's Special Instructions (Table 1 of the paper).

The paper benchmarks its run-time system with nine manually developed SIs
for an H.264 video encoder, spread over the three hot spots of Figure 1:

===================  =================  ============  ============
Hot spot             Special Instr.     # atom types  # molecules
===================  =================  ============  ============
Motion Estimation    SAD                1             3
(ME)                 SATD               4             20
Encoding Engine      (I)DCT             3             12
(EE)                 (I)HT 2x2          1             2
                     (I)HT 4x4          2             7
                     MC 4               3             11
                     IPred HDC          2             4
                     IPred VDC          1             3
Loop Filter (LF)     LF_BS4             2             5
===================  =================  ============  ============

This module reconstructs that library over eleven shared atom types.  The
atom sharing (e.g. ``TRANSFORM`` serves SATD, (I)DCT and both Hadamard
SIs; ``CLIP3`` serves MC and the intra predictors) follows the RISPP
platform publications and is what makes the scheduling problem
non-trivial: upgrading one SI can implicitly upgrade another.

Latency calibration
-------------------
The paper's molecules were developed and measured by hand; we likewise
assign every molecule an explicit latency, designed to reproduce the
dynamics the paper reports:

* the smallest hardware molecule of an SI gains roughly 3x over the
  trap-based software execution (a single atom instance is time-shared
  across all of its occurrences in the SI data flow, with register-file
  round trips between passes),
* every further meaningful upgrade step cuts the latency by roughly a
  third (more instances exploit molecule-level parallelism *and* allow
  direct atom-to-atom chaining that eliminates the per-pass overhead),
* the largest molecule reaches 15-50x over software, and
* unbalanced vectors are deliberately non-Pareto (the paper's
  ``m4 = (1, 3)`` example): a bigger determinant does not guarantee a
  faster molecule, which the cleaning step of equation (4) must handle.

The software (trap) latencies are calibrated so that a pure-software run
of the paper's 140-frame CIF workload lands at the reported 7,403 M
cycles (see :mod:`repro.workload.model`).  Per-atom bitstream sizes are
spread around the paper's averages so that the mean reconfiguration time
matches the reported 874.03 us.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.molecule import AtomSpace
from ..core.si import MoleculeImpl, SILibrary, SpecialInstruction
from ..fabric.atom import AtomRegistry, AtomType

__all__ = [
    "ATOM_SADTREE",
    "ATOM_SAV",
    "ATOM_QSUB",
    "ATOM_REPACK",
    "ATOM_HADAMARD",
    "ATOM_TRANSFORM",
    "ATOM_QUANT",
    "ATOM_SCALE",
    "ATOM_DCPACK",
    "ATOM_DCHAD",
    "ATOM_POINTFILTER",
    "ATOM_CLIP3",
    "ATOM_BYTEPACK",
    "ATOM_COLLAPSEADD",
    "ATOM_DCACC",
    "ATOM_LFCOND",
    "ATOM_LFFILT",
    "SOFTWARE_LATENCIES",
    "HOT_SPOT_SIS",
    "HOT_SPOT_ORDER",
    "PAPER_SI_LABELS",
    "build_atom_registry",
    "build_si_library",
    "paper_si_label",
]

# ---------------------------------------------------------------------------
# Atom types
# ---------------------------------------------------------------------------

ATOM_SADTREE = "SADTREE"          #: 16-pixel |a-b| adder tree (SAD datapath)
ATOM_SAV = "SAV"                  #: sum of absolute values + accumulate
ATOM_QSUB = "QSUB"                #: four parallel 8-bit subtractions
ATOM_REPACK = "REPACK"            #: operand repacking / transposition
ATOM_HADAMARD = "HADAMARD"        #: short Hadamard butterfly (SATD datapath)
ATOM_TRANSFORM = "TRANSFORM"      #: 4-point butterfly transform
ATOM_SCALE = "SCALE"              #: inverse-transform rescale/round datapath
ATOM_DCPACK = "DCPACK"            #: DC-coefficient gather/scatter network
ATOM_DCHAD = "DCHAD"              #: DC-level Hadamard butterfly (HT datapaths)
ATOM_QUANT = "QUANT"              #: quantisation scale/round datapath
ATOM_POINTFILTER = "POINTFILTER"  #: 6-tap half-pel interpolation filter
ATOM_CLIP3 = "CLIP3"              #: three-operand clipping
ATOM_BYTEPACK = "BYTEPACK"        #: byte (un)packing of pixel words
ATOM_COLLAPSEADD = "COLLAPSEADD"  #: vertical collapse adder (IPred VDC)
ATOM_DCACC = "DCACC"              #: horizontal DC accumulator (IPred HDC)
ATOM_LFCOND = "LFCOND"            #: deblocking-filter condition evaluation
ATOM_LFFILT = "LFFILT"            #: deblocking-filter pixel update

#: (name, partial-bitstream bytes, slices, description).  The bitstream
#: sizes average ~58,000 bytes -> ~879 us at 66 MB/s, matching the paper's
#: reported 874.03 us mean reconfiguration time within 1%; the slice
#: counts average exactly the 421 slices of Table 3 and each atom fits one
#: 1024-slice AC.
_ATOM_TABLE: Tuple[Tuple[str, int, int, str], ...] = (
    (ATOM_SADTREE, 58_000, 421, "16-pixel absolute-difference adder tree"),
    (ATOM_SAV, 55_000, 390, "16-pixel sum of absolute values tree"),
    (ATOM_QSUB, 53_000, 325, "quad packed 8-bit subtract"),
    (ATOM_REPACK, 54_500, 326, "4x4 operand transpose/repack network"),
    (ATOM_HADAMARD, 64_000, 540, "2-point Hadamard butterfly, SAV-chained"),
    (ATOM_TRANSFORM, 67_500, 580, "4-point butterfly (DCT/Hadamard stage)"),
    (ATOM_QUANT, 56_000, 380, "quantisation multiply/shift/round"),
    (ATOM_SCALE, 58_000, 421, "inverse-transform rescale and rounding"),
    (ATOM_DCPACK, 58_000, 421, "DC coefficient gather/scatter"),
    (ATOM_DCHAD, 58_000, 421, "DC-level Hadamard butterfly"),
    (ATOM_POINTFILTER, 65_500, 560, "6-tap luma interpolation point filter"),
    (ATOM_CLIP3, 51_000, 305, "clip3(min, max, value) datapath"),
    (ATOM_BYTEPACK, 52_500, 315, "pixel byte pack/unpack"),
    (ATOM_COLLAPSEADD, 57_500, 390, "vertical collapse adder"),
    (ATOM_DCACC, 58_000, 421, "horizontal DC accumulator"),
    (ATOM_LFCOND, 56_500, 400, "boundary-strength condition evaluation"),
    (ATOM_LFFILT, 63_500, 541, "4-pixel edge filter update"),
)

# ---------------------------------------------------------------------------
# Special Instructions
# ---------------------------------------------------------------------------

#: Calibrated base-ISA (trap) latencies per SI execution, in cycles.
SOFTWARE_LATENCIES: Dict[str, int] = {
    "SAD": 400,
    "SATD": 1979,
    "DCT": 2420,
    "HT2x2": 200,
    "HT4x4": 400,
    "MC": 1040,
    "IPredHDC": 330,
    "IPredVDC": 260,
    "LF_BS4": 690,
}

#: Pretty labels as printed in the paper's Table 1.
PAPER_SI_LABELS: Dict[str, str] = {
    "SAD": "SAD",
    "SATD": "SATD",
    "DCT": "(I)DCT",
    "HT2x2": "(I)HT 2x2",
    "HT4x4": "(I)HT 4x4",
    "MC": "MC 4",
    "IPredHDC": "IPred HDC",
    "IPredVDC": "IPred VDC",
    "LF_BS4": "LF_BS4",
}

#: The SIs of each computational hot spot (Figure 1).
HOT_SPOT_SIS: Dict[str, Tuple[str, ...]] = {
    "ME": ("SAD", "SATD"),
    "EE": ("DCT", "HT2x2", "HT4x4", "MC", "IPredHDC", "IPredVDC"),
    "LF": ("LF_BS4",),
}

#: Hot-spot execution order within one frame (Figure 1).
HOT_SPOT_ORDER: Tuple[str, ...] = ("ME", "EE", "LF")

#: Per-SI molecule definitions: the atom types of the SI's data path (in
#: vector order) and ``(instance vector, latency)`` pairs.  The vectors
#: per SI reproduce the paper's Table 1 molecule counts exactly; the
#: latencies implement the calibrated upgrade ladders described in the
#: module docstring.
_SI_MOLECULES: Dict[
    str, Tuple[Tuple[str, ...], Tuple[Tuple[Tuple[int, ...], int], ...]]
] = {
    # SAD: 16x16 block SAD; molecule-level parallelism splits the row
    # passes across SAV instances.  Software 680.
    "SAD": (
        (ATOM_SADTREE,),
        (
            ((1,), 52),
            ((3,), 22),
            ((8,), 10),
        ),
    ),
    # SATD: difference (QSUB), repacking, 4x4 Hadamard (HADAMARD) and
    # the absolute-value sum (SAV).  Software 1560.  HADAMARD is the
    # bottleneck stage, so h-heavy vectors run faster at equal
    # determinant, and s-heavy vectors are non-Pareto.
    "SATD": (
        (ATOM_QSUB, ATOM_REPACK, ATOM_HADAMARD, ATOM_SAV),
        (
            ((1, 1, 1, 1), 160),
            ((1, 1, 2, 1), 90),
            ((1, 2, 2, 1), 72),
            ((2, 1, 2, 1), 74),
            ((1, 1, 2, 2), 80),
            ((1, 1, 3, 1), 66),
            ((2, 2, 2, 1), 58),
            ((1, 2, 2, 2), 70),
            ((2, 1, 2, 2), 65),
            ((1, 1, 3, 2), 62),
            ((1, 2, 3, 1), 56),
            ((2, 1, 3, 1), 57),
            ((1, 1, 4, 1), 54),
            ((2, 2, 2, 2), 50),
            ((2, 2, 3, 1), 45),
            ((1, 2, 4, 1), 47),
            ((2, 1, 4, 1), 48),
            ((2, 2, 3, 2), 41),
            ((2, 2, 4, 1), 38),
            ((2, 2, 4, 2), 30),
        ),
    ),
    # (I)DCT: forward + inverse 4x4 integer transform with rescaling.
    # Software 1380.
    "DCT": (
        (ATOM_SCALE, ATOM_TRANSFORM, ATOM_QUANT),
        (
            ((1, 1, 1), 150),
            ((1, 1, 2), 100),
            ((2, 1, 1), 95),
            ((1, 2, 1), 82),
            ((2, 1, 2), 72),
            ((1, 2, 2), 62),
            ((2, 2, 1), 58),
            ((2, 2, 2), 48),
            ((1, 4, 1), 44),
            ((1, 4, 2), 38),
            ((2, 4, 1), 34),
            ((2, 4, 2), 28),
        ),
    ),
    # (I)HT 2x2: chroma DC Hadamard on the shared butterfly atom.
    # Software 260.
    "HT2x2": (
        (ATOM_DCHAD,),
        (
            ((2,), 30),
            ((4,), 16),
        ),
    ),
    # (I)HT 4x4: luma DC Hadamard with repacking.  Software 520.
    # (4,1) is non-Pareto against (3,2).
    "HT4x4": (
        (ATOM_DCHAD, ATOM_DCPACK),
        (
            ((1, 1), 58),
            ((2, 1), 46),
            ((2, 2), 38),
            ((3, 2), 30),
            ((4, 1), 40),
            ((4, 2), 24),
            ((4, 4), 18),
        ),
    ),
    # MC 4: quarter-pel motion compensation of a 4-pixel group (Figure 3:
    # BytePack, PointFilter, Clip3).  Software 1060.
    "MC": (
        (ATOM_POINTFILTER, ATOM_CLIP3, ATOM_BYTEPACK),
        (
            ((1, 1, 1), 128),
            ((2, 1, 1), 78),
            ((2, 1, 2), 62),
            ((2, 2, 1), 58),
            ((3, 1, 1), 64),
            ((2, 2, 2), 48),
            ((4, 1, 1), 52),
            ((3, 2, 2), 40),
            ((4, 1, 2), 42),
            ((4, 2, 1), 39),
            ((4, 2, 2), 30),
        ),
    ),
    # IPred HDC: horizontal-DC intra prediction.  Software 450.
    "IPredHDC": (
        (ATOM_DCACC, ATOM_CLIP3),
        (
            ((2, 1), 40),
            ((2, 2), 30),
            ((4, 2), 20),
            ((6, 2), 14),
        ),
    ),
    # IPred VDC: vertical-DC intra prediction.  Software 360.
    "IPredVDC": (
        (ATOM_COLLAPSEADD,),
        (
            ((2,), 32),
            ((4,), 20),
            ((6,), 13),
        ),
    ),
    # LF_BS4: strongest-boundary deblocking of one 4-pixel edge.
    # Software 800.  (1,4) out-runs (2,2) at a larger determinant.
    "LF_BS4": (
        (ATOM_LFCOND, ATOM_LFFILT),
        (
            ((1, 1), 72),
            ((1, 2), 46),
            ((1, 4), 32),
            ((2, 4), 23),
            ((2, 6), 16),
        ),
    ),
}


def build_atom_registry() -> AtomRegistry:
    """The eleven H.264 atom types with calibrated physical properties."""
    return AtomRegistry(
        AtomType(name, bitstream_bytes=bits, slices=slices, description=desc)
        for name, bits, slices, desc in _ATOM_TABLE
    )


def _molecule_name(atom_names: Sequence[str], vector: Sequence[int]) -> str:
    """Compact molecule identifier, e.g. ``qs1re1tr2sa1``."""
    return "".join(
        f"{name[:2].lower()}{count}"
        for name, count in zip(atom_names, vector)
        if count
    )


def build_si_library(registry: AtomRegistry = None) -> SILibrary:
    """Construct the nine-SI H.264 library of Table 1.

    Parameters
    ----------
    registry:
        Atom registry to bind the library to; a fresh calibrated registry
        is built when omitted.
    """
    if registry is None:
        registry = build_atom_registry()
    space: AtomSpace = registry.space
    sis: List[SpecialInstruction] = []
    for si_name, (atom_names, entries) in _SI_MOLECULES.items():
        impls = []
        for vector, latency in entries:
            counts = dict(zip(atom_names, vector))
            impls.append(
                MoleculeImpl(
                    si_name=si_name,
                    name=_molecule_name(atom_names, vector),
                    atoms=space.molecule(counts),
                    latency=latency,
                )
            )
        sis.append(
            SpecialInstruction(
                name=si_name,
                space=space,
                software_latency=SOFTWARE_LATENCIES[si_name],
                molecules=impls,
            )
        )
    return SILibrary(space, sis)


def paper_si_label(si_name: str) -> str:
    """The Table 1 spelling of an SI name (e.g. ``DCT`` -> ``(I)DCT``)."""
    return PAPER_SI_LABELS.get(si_name, si_name)
