"""Deblocking filter, boundary strength 4 (the ``LF_BS4`` SI).

The strongest H.264 deblocking mode applies to intra macroblock edges:
for each 4-pixel edge segment the samples ``p2 p1 p0 | q0 q1 q2`` are
examined and, when the activity conditions hold, replaced with the
strong low-pass combination of the standard:

    p0' = (p2 + 2 p1 + 2 p0 + 2 q0 + q1 + 4) >> 3
    p1' = (p2 + p1 + p0 + q0 + 2) >> 2
    p2' = (2 p3 + 3 p2 + p1 + p0 + q0 + 4) >> 3

(and mirrored for the ``q`` side).  The prototype splits this into the
``LFCOND`` atom (condition evaluation) and the ``LFFILT`` atom (sample
update).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import TraceError

__all__ = ["alpha_beta", "filter_edge_bs4", "deblock_vertical_edge"]


def alpha_beta(qp: int) -> Tuple[int, int]:
    """Simplified alpha/beta activity thresholds for a QP."""
    if not 0 <= qp <= 51:
        raise TraceError(f"QP must be in 0..51, got {qp}")
    alpha = int(0.8 * (2.0 ** (qp / 6.0)))
    beta = int(0.5 * qp)
    return max(alpha, 1), max(beta, 1)


def filter_edge_bs4(samples: np.ndarray, qp: int) -> Tuple[np.ndarray, bool]:
    """Filter one 8-sample line ``p3 p2 p1 p0 | q0 q1 q2 q3``.

    Returns the (possibly) filtered line and whether the strong filter
    fired (one ``LF_BS4`` SI execution covers four such lines).
    """
    x = np.asarray(samples, dtype=np.int64)
    if x.shape != (8,):
        raise TraceError(f"edge line must have 8 samples, got {x.shape}")
    p3, p2, p1, p0, q0, q1, q2, q3 = x
    alpha, beta = alpha_beta(qp)
    fires = (
        abs(p0 - q0) < alpha
        and abs(p1 - p0) < beta
        and abs(q1 - q0) < beta
    )
    if not fires:
        return x.copy(), False
    out = x.copy()
    if abs(p0 - q0) < (alpha >> 2) + 2:
        out[3] = (p2 + 2 * p1 + 2 * p0 + 2 * q0 + q1 + 4) >> 3
        out[2] = (p2 + p1 + p0 + q0 + 2) >> 2
        out[1] = (2 * p3 + 3 * p2 + p1 + p0 + q0 + 4) >> 3
        out[4] = (q2 + 2 * q1 + 2 * q0 + 2 * p0 + p1 + 4) >> 3
        out[5] = (q2 + q1 + q0 + p0 + 2) >> 2
        out[6] = (2 * q3 + 3 * q2 + q1 + q0 + p0 + 4) >> 3
    else:
        out[3] = (2 * p1 + p0 + q1 + 2) >> 2
        out[4] = (2 * q1 + q0 + p1 + 2) >> 2
    return out, True


def deblock_vertical_edge(
    plane: np.ndarray, edge_x: int, y0: int, qp: int
) -> int:
    """Deblock a 4-row vertical edge segment at column ``edge_x``.

    Modifies ``plane`` in place and returns the number of ``LF_BS4`` SI
    executions (1 if any line of the segment fired, else 0 — the
    condition evaluation runs either way but the prototype only counts
    issued filter SIs).
    """
    if edge_x < 4 or edge_x > plane.shape[1] - 4:
        raise TraceError(f"edge column {edge_x} too close to the border")
    fired = False
    for row in range(y0, min(y0 + 4, plane.shape[0])):
        line = plane[row, edge_x - 4 : edge_x + 4].astype(np.int64)
        filtered, hit = filter_edge_bs4(line, qp)
        if hit:
            plane[row, edge_x - 4 : edge_x + 4] = np.clip(
                filtered, 0, 255
            ).astype(plane.dtype)
            fired = True
    return 1 if fired else 0
