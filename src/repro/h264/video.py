"""Synthetic video source.

The paper encodes a proprietary 140-frame CIF sequence we do not have;
this generator synthesises a deterministic test sequence with the
properties that matter for the run-time system: textured background,
moving foreground objects (so the motion search does real work and the
SAD/SATD counts vary per macroblock), a slow camera pan, and an optional
scene cut that upsets the monitor's learned expectations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from ..calibration import CIF_HEIGHT, CIF_WIDTH
from ..errors import TraceError
from .types import YuvFrame

__all__ = ["SyntheticVideo"]


@dataclass
class _Object:
    """A moving textured rectangle."""

    x: float
    y: float
    w: int
    h: int
    dx: float
    dy: float
    level: int


@dataclass
class SyntheticVideo:
    """Deterministic synthetic 4:2:0 sequence.

    Parameters
    ----------
    width / height:
        Luma resolution (must be macroblock aligned).
    num_frames:
        Sequence length.
    seed:
        Content seed; identical seeds give identical pixels.
    num_objects:
        Moving foreground rectangles.
    pan_speed:
        Horizontal camera pan in pixels per frame.
    scene_cut_frame:
        Frame at which the background texture is re-rolled (negative to
        disable).
    noise_level:
        Per-pixel sensor-noise amplitude.
    """

    width: int = CIF_WIDTH
    height: int = CIF_HEIGHT
    num_frames: int = 10
    seed: int = 42
    num_objects: int = 4
    pan_speed: float = 1.5
    scene_cut_frame: int = -1
    noise_level: float = 2.0

    def __post_init__(self) -> None:
        if self.width % 16 or self.height % 16:
            raise TraceError("resolution must be macroblock aligned")
        if self.num_frames <= 0:
            raise TraceError("num_frames must be positive")

    def _background(self, rng: np.random.RandomState) -> np.ndarray:
        """A wide, smooth-ish texture the pan scrolls across."""
        wide = self.width * 3
        base = rng.randint(40, 200, size=(self.height // 8 + 2,
                                          wide // 8 + 2))
        # Bilinear upsample for smooth gradients with texture detail.
        tex = np.kron(base, np.ones((8, 8))).astype(np.float64)
        tex += rng.uniform(-8, 8, size=tex.shape)
        return tex[: self.height, :wide]

    def _objects(self, rng: np.random.RandomState) -> List[_Object]:
        objects = []
        for _ in range(self.num_objects):
            objects.append(
                _Object(
                    x=float(rng.randint(0, self.width - 48)),
                    y=float(rng.randint(0, self.height - 48)),
                    w=int(rng.randint(24, 64)),
                    h=int(rng.randint(24, 64)),
                    dx=float(rng.uniform(-3.0, 3.0)),
                    dy=float(rng.uniform(-2.0, 2.0)),
                    level=int(rng.randint(30, 225)),
                )
            )
        return objects

    def frames(self) -> Iterator[YuvFrame]:
        """Generate the sequence frame by frame."""
        rng = np.random.RandomState(self.seed)
        background = self._background(rng)
        objects = self._objects(rng)
        for index in range(self.num_frames):
            if index == self.scene_cut_frame:
                background = self._background(rng)
                objects = self._objects(rng)
            offset = int(index * self.pan_speed) % (
                background.shape[1] - self.width
            )
            y = background[:, offset : offset + self.width].copy()
            for obj in objects:
                ox = int(obj.x) % max(1, self.width - obj.w)
                oy = int(obj.y) % max(1, self.height - obj.h)
                patch = y[oy : oy + obj.h, ox : ox + obj.w]
                checker = (
                    (np.add.outer(np.arange(obj.h), np.arange(obj.w)) // 4)
                    % 2
                ) * 24
                patch[:] = np.clip(obj.level + checker, 0, 255)
                obj.x += obj.dx
                obj.y += obj.dy
            if self.noise_level > 0:
                y = y + rng.uniform(
                    -self.noise_level, self.noise_level, size=y.shape
                )
            y8 = np.clip(y, 0, 255).astype(np.uint8)
            cb = np.full(
                (self.height // 2, self.width // 2), 128, dtype=np.uint8
            )
            cr = cb.copy()
            yield YuvFrame(y=y8, cb=cb, cr=cr, index=index)

    def all_frames(self) -> List[YuvFrame]:
        """Materialise the whole sequence (small test runs only)."""
        return list(self.frames())
