"""Functional H.264-subset encoder.

This is the workload substrate in its *functional* form: real pixels run
through the exact computations the paper's nine SIs implement — a
two-stage full-pel SAD search with half-pel SATD refinement (ME hot
spot), motion compensation / intra prediction, 4x4 core transform,
quantisation and the DC Hadamard transforms (EE hot spot), and BS-4
deblocking (LF hot spot).  While encoding, the encoder counts every SI
execution per macroblock and emits the
:class:`~repro.workload.trace.HotSpotTrace` sequence the run-time system
consumes, so the behavioural simulators can replay a *real* encode.

Omissions versus a full encoder (all irrelevant to the run-time system,
which only observes SI executions): entropy coding, rate control,
multiple reference frames, B frames, and sub-4x4 partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TraceError
from ..workload.trace import HotSpotTrace, Workload
from .deblock import deblock_vertical_edge
from .intra import predict_hdc, predict_vdc
from .mc import compensate
from .quant import dequantise4x4, quantise4x4
from .sad import sad16x16
from .satd import satd4x4
from .silibrary import HOT_SPOT_SIS
from .transform import (
    forward_dct4x4,
    hadamard2x2,
    hadamard4x4,
    inverse_dct4x4,
    inverse_hadamard4x4,
)
from .types import YuvFrame, macroblocks, mb_view

__all__ = ["EncoderConfig", "EncodeResult", "H264SubsetEncoder"]


@dataclass(frozen=True)
class EncoderConfig:
    """Tuning knobs of the functional encoder.

    Attributes
    ----------
    qp:
        Quantisation parameter (0..51).
    search_range:
        Full-pel motion search range in pixels.
    coarse_step:
        Grid step of the first search stage.
    intra_sad_threshold:
        Per-pixel SAD above which a macroblock is coded intra.
    deblock:
        Run the loop filter.
    """

    qp: int = 28
    search_range: int = 8
    coarse_step: int = 4
    intra_sad_threshold: float = 24.0
    deblock: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.qp <= 51:
            raise TraceError(f"QP must be in 0..51, got {self.qp}")
        if self.search_range < 1 or self.coarse_step < 1:
            raise TraceError("search range and step must be >= 1")


@dataclass
class EncodeResult:
    """Output of an encode run."""

    workload: Workload
    reconstructed: List[YuvFrame]
    psnr_per_frame: List[float]
    intra_mbs_per_frame: List[int]

    @property
    def mean_psnr(self) -> float:
        return float(np.mean(self.psnr_per_frame))


class _MbCounters:
    """Per-macroblock SI execution counters for one frame."""

    def __init__(self, num_mbs: int):
        self.me = np.zeros((num_mbs, len(HOT_SPOT_SIS["ME"])), np.int64)
        self.ee = np.zeros((num_mbs, len(HOT_SPOT_SIS["EE"])), np.int64)
        self.lf = np.zeros((num_mbs, len(HOT_SPOT_SIS["LF"])), np.int64)
        self._me_cols = {n: i for i, n in enumerate(HOT_SPOT_SIS["ME"])}
        self._ee_cols = {n: i for i, n in enumerate(HOT_SPOT_SIS["EE"])}
        self._lf_cols = {n: i for i, n in enumerate(HOT_SPOT_SIS["LF"])}

    def bump(self, hot_spot: str, mb: int, si_name: str, count: int = 1) -> None:
        if hot_spot == "ME":
            self.me[mb, self._me_cols[si_name]] += count
        elif hot_spot == "EE":
            self.ee[mb, self._ee_cols[si_name]] += count
        else:
            self.lf[mb, self._lf_cols[si_name]] += count


class H264SubsetEncoder:
    """Encodes a frame sequence and records the SI-execution workload."""

    #: Non-SI cycles per macroblock, matching the statistical model.
    ITERATION_OVERHEAD = {"ME": 250, "EE": 400, "LF": 120}

    def __init__(self, config: Optional[EncoderConfig] = None):
        self.config = config or EncoderConfig()

    # -- motion estimation ---------------------------------------------------

    def _full_pel_search(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        mb_y: int,
        mb_x: int,
        counters: _MbCounters,
        mb: int,
    ) -> Tuple[Tuple[int, int], int]:
        """Two-stage full-pel search; returns (best MV, best SAD)."""
        cfg = self.config
        h, w = reference.shape
        cur = mb_view(current, mb_y, mb_x).astype(np.int64)

        def sad_at(dy: int, dx: int) -> Optional[int]:
            y, x = mb_y + dy, mb_x + dx
            if not (0 <= y <= h - 16 and 0 <= x <= w - 16):
                return None
            counters.bump("ME", mb, "SAD")
            return sad16x16(cur, reference[y : y + 16, x : x + 16])

        best_mv, best_sad = (0, 0), sad_at(0, 0)
        # Stage 1: coarse grid.
        r, step = cfg.search_range, cfg.coarse_step
        for dy in range(-r, r + 1, step):
            for dx in range(-r, r + 1, step):
                if (dy, dx) == (0, 0):
                    continue
                value = sad_at(dy, dx)
                if value is not None and value < best_sad:
                    best_mv, best_sad = (dy, dx), value
        # Stage 2: +-1 refinement around the coarse winner.
        cy, cx = best_mv
        for dy in (cy - 1, cy, cy + 1):
            for dx in (cx - 1, cx, cx + 1):
                if (dy, dx) == best_mv or (dy, dx) == (0, 0):
                    continue
                value = sad_at(dy, dx)
                if value is not None and value < best_sad:
                    best_mv, best_sad = (dy, dx), value
        return best_mv, best_sad

    def _half_pel_refine(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        mb_y: int,
        mb_x: int,
        full_mv: Tuple[int, int],
        counters: _MbCounters,
        mb: int,
    ) -> Tuple[int, int]:
        """SATD-based half-pel refinement; returns the MV in half-pel
        units."""
        cur = mb_view(current, mb_y, mb_x).astype(np.int64)
        base = (full_mv[0] * 2, full_mv[1] * 2)

        def satd_cost(mv: Tuple[int, int]) -> int:
            predicted, _ = compensate(reference, mb_y, mb_x, mv)
            total = 0
            for by in range(0, 16, 4):
                for bx in range(0, 16, 4):
                    counters.bump("ME", mb, "SATD")
                    total += satd4x4(
                        cur[by : by + 4, bx : bx + 4],
                        predicted[by : by + 4, bx : bx + 4],
                    )
            return total

        best_mv, best_cost = base, satd_cost(base)
        for candidate in (
            (base[0], base[1] + 1),
            (base[0] + 1, base[1]),
        ):
            cost = satd_cost(candidate)
            if cost < best_cost:
                best_mv, best_cost = candidate, cost
        return best_mv

    # -- residual coding -------------------------------------------------------

    def _code_residual(
        self,
        residual: np.ndarray,
        counters: _MbCounters,
        mb: int,
    ) -> np.ndarray:
        """Transform/quantise/reconstruct a 16x16 residual in 4x4 blocks.

        Each non-skipped 4x4 block costs one (I)DCT SI execution (the
        prototype's DCT SI folds the forward and inverse passes of the
        reconstruction loop into one instruction).
        """
        qp = self.config.qp
        reconstructed = np.zeros_like(residual)
        for by in range(0, 16, 4):
            for bx in range(0, 16, 4):
                block = residual[by : by + 4, bx : bx + 4]
                if not block.any():
                    continue  # coded-block-pattern skip
                counters.bump("EE", mb, "DCT")
                coefficients = forward_dct4x4(block)
                levels = quantise4x4(coefficients, qp)
                restored = dequantise4x4(levels, qp)
                reconstructed[by : by + 4, bx : bx + 4] = inverse_dct4x4(
                    restored
                )
        return reconstructed

    # -- frame encoding ---------------------------------------------------------

    def encode(self, frames: Sequence[YuvFrame]) -> EncodeResult:
        """Encode the sequence and return traces + reconstruction."""
        frames = list(frames)
        if not frames:
            raise TraceError("cannot encode an empty sequence")
        workload = Workload(
            name=f"h264-encoder-{frames[0].width}x{frames[0].height}-"
            f"{len(frames)}f"
        )
        reconstructed: List[YuvFrame] = []
        psnr: List[float] = []
        intra_counts: List[int] = []
        reference: Optional[np.ndarray] = None
        for frame in frames:
            recon, counters, intra_mbs = self._encode_frame(
                frame, reference
            )
            reference = recon.y.astype(np.int64)
            reconstructed.append(recon)
            error = (
                frame.y.astype(np.float64) - recon.y.astype(np.float64)
            )
            mse = float((error ** 2).mean())
            psnr.append(
                99.0 if mse == 0 else 10.0 * np.log10(255.0 ** 2 / mse)
            )
            intra_counts.append(intra_mbs)
            for hot_spot, counts in (
                ("ME", counters.me),
                ("EE", counters.ee),
                ("LF", counters.lf),
            ):
                workload.append(
                    HotSpotTrace(
                        hot_spot=hot_spot,
                        si_names=HOT_SPOT_SIS[hot_spot],
                        counts=counts,
                        overhead_per_iteration=self.ITERATION_OVERHEAD[
                            hot_spot
                        ],
                        frame_index=frame.index,
                    )
                )
        return EncodeResult(
            workload=workload,
            reconstructed=reconstructed,
            psnr_per_frame=psnr,
            intra_mbs_per_frame=intra_counts,
        )

    def _encode_frame(
        self, frame: YuvFrame, reference: Optional[np.ndarray]
    ) -> Tuple[YuvFrame, _MbCounters, int]:
        counters = _MbCounters(frame.num_macroblocks)
        current = frame.y.astype(np.int64)
        recon = np.zeros_like(current)
        modes: Dict[int, str] = {}
        mvs: Dict[int, Tuple[int, int]] = {}
        intra_mbs = 0

        # --- ME hot spot (all macroblocks) ---
        if reference is not None:
            for mb, y, x in macroblocks(frame):
                full_mv, best_sad = self._full_pel_search(
                    current, reference, y, x, counters, mb
                )
                half_mv = self._half_pel_refine(
                    current, reference, y, x, full_mv, counters, mb
                )
                mvs[mb] = half_mv
                threshold = self.config.intra_sad_threshold * 256
                modes[mb] = "intra" if best_sad > threshold else "inter"
        else:
            for mb, _, _ in macroblocks(frame):
                modes[mb] = "intra"

        # --- EE hot spot ---
        for mb, y, x in macroblocks(frame):
            cur = mb_view(current, y, x)
            if modes[mb] == "inter":
                predicted, mc_count = compensate(
                    reference, y, x, mvs[mb]
                )
                counters.bump("EE", mb, "MC", mc_count)
            else:
                intra_mbs += 1
                left = recon[y : y + 16, x - 1] if x > 0 else None
                top = recon[y - 1, x : x + 16] if y > 0 else None
                counters.bump("EE", mb, "IPredHDC")
                counters.bump("EE", mb, "IPredVDC")
                hdc = predict_hdc(left)
                vdc = predict_vdc(top)
                cost_h = int(np.abs(cur - hdc).sum())
                cost_v = int(np.abs(cur - vdc).sum())
                predicted = hdc if cost_h <= cost_v else vdc
                # Intra 16x16: DC Hadamard over the 4x4 DC coefficients
                # (forward + inverse -> two HT4x4 SI executions).
                counters.bump("EE", mb, "HT4x4", 2)
                dcs = predicted[::4, ::4].astype(np.int64)
                _ = inverse_hadamard4x4(hadamard4x4(dcs))
            residual = cur - predicted
            restored = self._code_residual(residual, counters, mb)
            recon[y : y + 16, x : x + 16] = np.clip(
                predicted + restored, 0, 255
            )
            # Chroma DC Hadamard (flat synthetic chroma: one 2x2 pass).
            counters.bump("EE", mb, "HT2x2")
            _ = hadamard2x2(np.zeros((2, 2), dtype=np.int64))

        # --- LF hot spot ---
        if self.config.deblock:
            for mb, y, x in macroblocks(frame):
                strong = modes[mb] == "intra"
                qp = min(51, self.config.qp + (4 if strong else 0))
                for seg in range(0, 16, 4):
                    if x >= 4 and x + 4 <= frame.width:
                        fired = deblock_vertical_edge(
                            recon, x, y + seg, qp
                        )
                        counters.bump("LF", mb, "LF_BS4", fired)
                    if y >= 4 and y + 4 <= frame.height:
                        # Horizontal edge: filter via the transpose.
                        view = recon[y - 4 : y + 4, x + seg : x + seg + 4].T
                        buffer = np.ascontiguousarray(view)
                        fired = deblock_vertical_edge(buffer, 4, 0, qp)
                        recon[y - 4 : y + 4, x + seg : x + seg + 4] = (
                            buffer.T
                        )
                        counters.bump("LF", mb, "LF_BS4", fired)

        out = YuvFrame(
            y=np.clip(recon, 0, 255).astype(np.uint8),
            cb=frame.cb.copy(),
            cr=frame.cr.copy(),
            index=frame.index,
        )
        return out, counters, intra_mbs
