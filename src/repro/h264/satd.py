"""SATD — sum of absolute transformed differences (the ``SATD`` SI).

The fractional-pel motion refinement compares candidates in the
transform domain: the residual is 4x4-Hadamard transformed and the
absolute coefficient sum is the matching cost.  This penalises residuals
that are expensive to code, which a plain SAD misses.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .transform import _H4

__all__ = ["satd4x4", "satd16x16"]


def satd4x4(current: np.ndarray, reference: np.ndarray) -> int:
    """SATD of one 4x4 block pair (one ``SATD`` SI execution)."""
    a = np.asarray(current, dtype=np.int64)
    b = np.asarray(reference, dtype=np.int64)
    if a.shape != (4, 4) or b.shape != (4, 4):
        raise TraceError(
            f"satd4x4 expects 4x4 blocks, got {a.shape} and {b.shape}"
        )
    diff = a - b
    transformed = _H4 @ diff @ _H4
    return int((np.abs(transformed).sum() + 1) // 2)


def satd16x16(current: np.ndarray, reference: np.ndarray) -> int:
    """SATD over a 16x16 block as the sum of its sixteen 4x4 SATDs."""
    a = np.asarray(current, dtype=np.int64)
    b = np.asarray(reference, dtype=np.int64)
    if a.shape != (16, 16) or b.shape != (16, 16):
        raise TraceError(
            f"satd16x16 expects 16x16 blocks, got {a.shape} and {b.shape}"
        )
    total = 0
    for by in range(0, 16, 4):
        for bx in range(0, 16, 4):
            total += satd4x4(
                a[by : by + 4, bx : bx + 4], b[by : by + 4, bx : bx + 4]
            )
    return total
