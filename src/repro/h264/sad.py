"""SAD — sum of absolute differences (the paper's ``SAD`` SI).

The 16x16 SAD is the workhorse of the full-pel motion search: for each
candidate motion vector the current macroblock is compared against the
reference window.  In the RISPP prototype a single ``SADTREE`` atom
computes one row of absolute differences per pass; larger molecules work
on several rows in parallel.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError

__all__ = ["sad_block", "sad16x16"]


def sad_block(a: np.ndarray, b: np.ndarray) -> int:
    """Sum of absolute differences between two equally-shaped blocks."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise TraceError(f"SAD shape mismatch: {a.shape} vs {b.shape}")
    return int(
        np.abs(a.astype(np.int32) - b.astype(np.int32)).sum()
    )


def sad16x16(current: np.ndarray, reference: np.ndarray) -> int:
    """16x16 SAD (one execution of the ``SAD`` Special Instruction)."""
    if current.shape != (16, 16) or reference.shape != (16, 16):
        raise TraceError(
            f"SAD16x16 expects 16x16 blocks, got {current.shape} and "
            f"{reference.shape}"
        )
    return sad_block(current, reference)
