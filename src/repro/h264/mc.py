"""Motion compensation (the ``MC 4`` SI).

H.264 luma sub-pel interpolation: half-pel samples come from the 6-tap
filter ``(1, -5, 20, 20, -5, 1) / 32`` (the prototype's ``POINTFILTER``
atom), quarter-pel samples from averaging (``CLIP3``/``BYTEPACK`` finish
the datapath).  The functional encoder uses half-pel precision — enough
to exercise the interpolation path; the SI execution counts are what the
run-time system consumes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import TraceError

__all__ = ["half_pel_filter", "interpolate_block", "compensate"]

_TAPS = np.array([1, -5, 20, 20, -5, 1], dtype=np.int64)


def half_pel_filter(samples: np.ndarray) -> np.ndarray:
    """Apply the 6-tap filter along the last axis (valid positions only).

    Input of length ``n`` yields ``n - 5`` half-pel samples, clipped to
    8 bit.
    """
    x = np.asarray(samples, dtype=np.int64)
    if x.shape[-1] < 6:
        raise TraceError("need at least 6 samples for the 6-tap filter")
    acc = np.zeros(x.shape[:-1] + (x.shape[-1] - 5,), dtype=np.int64)
    for k, tap in enumerate(_TAPS):
        acc += tap * x[..., k : k + acc.shape[-1]]
    return np.clip((acc + 16) >> 5, 0, 255)


def interpolate_block(
    reference: np.ndarray, y: int, x: int, size: int,
    half_y: bool, half_x: bool,
) -> np.ndarray:
    """A ``size x size`` block at (possibly half-pel) position.

    ``(y, x)`` is the full-pel anchor; ``half_x``/``half_y`` select the
    half-sample offsets.  The reference is edge-padded so positions near
    the border remain valid.
    """
    ref = np.asarray(reference, dtype=np.int64)
    pad = 3
    padded = np.pad(ref, pad, mode="edge")
    py, px = y + pad, x + pad
    if not half_x and not half_y:
        return padded[py : py + size, px : px + size]
    if half_x and not half_y:
        rows = padded[py : py + size, px - 2 : px + size + 3]
        return half_pel_filter(rows)
    if half_y and not half_x:
        cols = padded[py - 2 : py + size + 3, px : px + size].T
        return half_pel_filter(cols).T
    # Diagonal half-pel: horizontal filter first, then vertical.
    rows = padded[py - 2 : py + size + 3, px - 2 : px + size + 3]
    horizontal = half_pel_filter(rows)
    return half_pel_filter(horizontal.T).T


def compensate(
    reference: np.ndarray,
    mb_y: int,
    mb_x: int,
    motion_vector: Tuple[int, int],
    size: int = 16,
) -> Tuple[np.ndarray, int]:
    """Motion-compensate one block.

    ``motion_vector`` is in half-pel units ``(dy, dx)``.  Returns the
    predicted block and the number of ``MC 4`` SI executions the
    prototype would issue (one per 4-pixel-wide interpolation group per
    row when any half-pel component is active, one per four rows for the
    full-pel copy path).
    """
    dy, dx = motion_vector
    full_y = mb_y + (dy >> 1)
    full_x = mb_x + (dx >> 1)
    half_y = bool(dy & 1)
    half_x = bool(dx & 1)
    h = np.asarray(reference).shape[0]
    w = np.asarray(reference).shape[1]
    full_y = max(0, min(h - size, full_y))
    full_x = max(0, min(w - size, full_x))
    block = interpolate_block(reference, full_y, full_x, size,
                              half_y, half_x)
    if half_x or half_y:
        si_executions = (size // 4) * (size // 4)
    else:
        si_executions = size // 4
    return block.astype(np.int64), si_executions
