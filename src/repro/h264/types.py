"""Frame and macroblock types for the functional H.264 subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..calibration import MACROBLOCK_SIZE
from ..errors import TraceError

__all__ = ["YuvFrame", "macroblocks", "mb_view"]


@dataclass
class YuvFrame:
    """One 4:2:0 video frame (8-bit planes).

    Attributes
    ----------
    y:
        Luma plane, shape ``(height, width)``.
    cb / cr:
        Chroma planes, shape ``(height/2, width/2)``.
    index:
        Display order of the frame.
    """

    y: np.ndarray
    cb: np.ndarray
    cr: np.ndarray
    index: int = 0

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y, dtype=np.uint8)
        self.cb = np.asarray(self.cb, dtype=np.uint8)
        self.cr = np.asarray(self.cr, dtype=np.uint8)
        h, w = self.y.shape
        if h % MACROBLOCK_SIZE or w % MACROBLOCK_SIZE:
            raise TraceError(
                f"luma plane {w}x{h} is not macroblock aligned"
            )
        if self.cb.shape != (h // 2, w // 2) or self.cr.shape != (
            h // 2,
            w // 2,
        ):
            raise TraceError("chroma planes must be half the luma size")

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def mbs_wide(self) -> int:
        return self.width // MACROBLOCK_SIZE

    @property
    def mbs_high(self) -> int:
        return self.height // MACROBLOCK_SIZE

    @property
    def num_macroblocks(self) -> int:
        return self.mbs_wide * self.mbs_high

    def copy(self) -> "YuvFrame":
        return YuvFrame(
            self.y.copy(), self.cb.copy(), self.cr.copy(), self.index
        )


def macroblocks(frame: YuvFrame) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(mb_index, y, x)`` for every macroblock, raster order.

    ``(y, x)`` is the top-left luma pixel of the macroblock.
    """
    index = 0
    for mb_y in range(frame.mbs_high):
        for mb_x in range(frame.mbs_wide):
            yield index, mb_y * MACROBLOCK_SIZE, mb_x * MACROBLOCK_SIZE
            index += 1


def mb_view(plane: np.ndarray, y: int, x: int,
            size: int = MACROBLOCK_SIZE) -> np.ndarray:
    """A ``size x size`` view into ``plane`` at ``(y, x)``."""
    return plane[y : y + size, x : x + size]
