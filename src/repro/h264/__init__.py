"""H.264 workload substrate.

Two layers live here:

* :mod:`repro.h264.silibrary` — the *static* description of the paper's
  benchmark application: the eleven atom types, the nine Special
  Instructions with their molecule sets (Table 1) and the three hot spots
  (ME, EE, LF) of Figure 1.
* the functional encoder (:mod:`repro.h264.encoder` and the kernel
  modules) — a numpy implementation of the H.264 subset the SIs
  accelerate.  It processes real pixels and emits the per-macroblock
  SI-execution traces the run-time system consumes.
"""

from __future__ import annotations

from .silibrary import (
    ATOM_SADTREE,
    ATOM_SAV,
    ATOM_QSUB,
    ATOM_REPACK,
    ATOM_HADAMARD,
    ATOM_TRANSFORM,
    ATOM_QUANT,
    ATOM_SCALE,
    ATOM_DCPACK,
    ATOM_DCHAD,
    ATOM_POINTFILTER,
    ATOM_CLIP3,
    ATOM_BYTEPACK,
    ATOM_COLLAPSEADD,
    ATOM_LFCOND,
    ATOM_LFFILT,
    HOT_SPOT_SIS,
    HOT_SPOT_ORDER,
    build_atom_registry,
    build_si_library,
    paper_si_label,
)
from .types import YuvFrame, macroblocks, mb_view
from .video import SyntheticVideo
from .encoder import EncoderConfig, EncodeResult, H264SubsetEncoder

__all__ = [
    "ATOM_SADTREE",
    "ATOM_SAV",
    "ATOM_QSUB",
    "ATOM_REPACK",
    "ATOM_HADAMARD",
    "ATOM_TRANSFORM",
    "ATOM_QUANT",
    "ATOM_SCALE",
    "ATOM_DCPACK",
    "ATOM_DCHAD",
    "ATOM_POINTFILTER",
    "ATOM_CLIP3",
    "ATOM_BYTEPACK",
    "ATOM_COLLAPSEADD",
    "ATOM_LFCOND",
    "ATOM_LFFILT",
    "HOT_SPOT_SIS",
    "HOT_SPOT_ORDER",
    "build_atom_registry",
    "build_si_library",
    "paper_si_label",
    "YuvFrame",
    "macroblocks",
    "mb_view",
    "SyntheticVideo",
    "EncoderConfig",
    "EncodeResult",
    "H264SubsetEncoder",
]
