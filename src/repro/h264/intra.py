"""Intra prediction (the ``IPred HDC`` / ``IPred VDC`` SIs).

The paper's two intra SIs compute DC-style predictions: ``IPred HDC``
collapses the left neighbour column (horizontal DC), ``IPred VDC`` the
top neighbour row (vertical DC).  The prototype's ``COLLAPSEADD`` atom
performs the neighbour summation; ``CLIP3`` clamps the horizontal
variant's gradient-corrected output.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TraceError

__all__ = ["predict_hdc", "predict_vdc", "predict_dc"]


def _check_neighbours(values: Optional[np.ndarray], size: int) -> Optional[np.ndarray]:
    if values is None:
        return None
    v = np.asarray(values, dtype=np.int64).ravel()
    if v.size != size:
        raise TraceError(
            f"expected {size} neighbour samples, got {v.size}"
        )
    return v


def predict_hdc(left: Optional[np.ndarray], size: int = 16) -> np.ndarray:
    """Horizontal-DC prediction: every row takes its left neighbour's
    value; without neighbours the mid-grey 128 is used."""
    left = _check_neighbours(left, size)
    if left is None:
        return np.full((size, size), 128, dtype=np.int64)
    return np.repeat(left[:, None], size, axis=1)


def predict_vdc(top: Optional[np.ndarray], size: int = 16) -> np.ndarray:
    """Vertical-DC prediction: every column takes its top neighbour."""
    top = _check_neighbours(top, size)
    if top is None:
        return np.full((size, size), 128, dtype=np.int64)
    return np.repeat(top[None, :], size, axis=0)


def predict_dc(
    left: Optional[np.ndarray],
    top: Optional[np.ndarray],
    size: int = 16,
) -> np.ndarray:
    """Plain DC prediction from whichever neighbours exist."""
    left = _check_neighbours(left, size)
    top = _check_neighbours(top, size)
    parts = [v for v in (left, top) if v is not None]
    if not parts:
        return np.full((size, size), 128, dtype=np.int64)
    dc = int(round(float(np.concatenate(parts).mean())))
    return np.full((size, size), dc, dtype=np.int64)
