"""H.264 integer transforms (the ``(I)DCT``, ``(I)HT 4x4`` and
``(I)HT 2x2`` SIs).

The 4x4 forward core transform is ``Y = C X C^T`` with the integer
matrix ``C``; the inverse uses the standard reconstruction matrix with a
``>> 6`` rounding shift so that forward -> inverse reproduces the input
exactly (in the absence of quantisation).  The Hadamard transforms act on
the DC coefficients: 4x4 for luma (Intra 16x16 mode), 2x2 for chroma.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError

__all__ = [
    "forward_dct4x4",
    "inverse_dct4x4",
    "hadamard4x4",
    "inverse_hadamard4x4",
    "hadamard2x2",
]

#: H.264 forward core-transform matrix.
_CF = np.array(
    [
        [1, 1, 1, 1],
        [2, 1, -1, -2],
        [1, -1, -1, 1],
        [1, -2, 2, -1],
    ],
    dtype=np.int64,
)

#: Row norms of ``_CF`` squared: CF @ CF.T == diag(4, 10, 4, 10).
_S = np.array([4, 10, 4, 10], dtype=np.int64)

#: Integer rescale weights: 1600 / (s_i * s_j) (values 100, 40 and 16).
#: The H.264 standard folds these per-position factors into the
#: quantisation tables; we apply them explicitly in the inverse so the
#: forward/inverse pair is exactly lossless.
_W = (1600 // np.outer(_S, _S)).astype(np.int64)

#: 4x4 Hadamard matrix.
_H4 = np.array(
    [
        [1, 1, 1, 1],
        [1, 1, -1, -1],
        [1, -1, -1, 1],
        [1, -1, 1, -1],
    ],
    dtype=np.int64,
)


def _check4x4(block: np.ndarray, name: str) -> np.ndarray:
    block = np.asarray(block, dtype=np.int64)
    if block.shape != (4, 4):
        raise TraceError(f"{name} expects a 4x4 block, got {block.shape}")
    return block


def forward_dct4x4(block: np.ndarray) -> np.ndarray:
    """Forward 4x4 integer core transform ``Y = C X C^T``."""
    x = _check4x4(block, "forward_dct4x4")
    return _CF @ x @ _CF.T


def inverse_dct4x4(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 4x4 core transform.

    Uses the exact inverse ``X = CF^T S^-1 Y S^-1 CF`` in integer
    arithmetic (the ``S^-1`` position scaling is the part the standard
    folds into its dequantisation tables).
    ``inverse_dct4x4(forward_dct4x4(x)) == x`` holds exactly for any
    integer block — the round trip is lossless, which the tests verify.
    For coefficients perturbed by quantisation the result is rounded to
    the nearest integer.
    """
    y = _check4x4(coefficients, "inverse_dct4x4")
    z = _CF.T @ (y * _W) @ _CF
    return (z + 800) // 1600


def hadamard4x4(block: np.ndarray) -> np.ndarray:
    """Forward 4x4 Hadamard (DC transform of Intra-16x16 luma).

    Unscaled (``H X H``); the inverse carries the full ``1/16``.
    """
    x = _check4x4(block, "hadamard4x4")
    return _H4 @ x @ _H4


def inverse_hadamard4x4(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 4x4 Hadamard: exactly lossless against
    :func:`hadamard4x4` since ``H (H X H) H == 16 X``."""
    y = _check4x4(coefficients, "inverse_hadamard4x4")
    return (_H4 @ y @ _H4 + 8) // 16


def hadamard2x2(block: np.ndarray) -> np.ndarray:
    """2x2 Hadamard (chroma DC transform); self-inverse up to ``// 4``."""
    x = np.asarray(block, dtype=np.int64)
    if x.shape != (2, 2):
        raise TraceError(f"hadamard2x2 expects a 2x2 block, got {x.shape}")
    h = np.array([[1, 1], [1, -1]], dtype=np.int64)
    return h @ x @ h
