"""Cycle-level model of the HEF scheduler hardware (Section 5).

The prototype implements HEF as a 12-state FSM with a pipelined,
division-free benefit datapath.  This module walks the same algorithm as
:class:`~repro.core.schedulers.hef.HEFScheduler` while counting
scheduler-clock cycles per FSM state, so experiments can confirm the
paper's claim that the run-time decision is negligible next to an atom
reconfiguration (874 µs ≈ 87,000 core cycles; the FSM finishes a full
hot-spot schedule in a few hundred of its own cycles).

Cycle accounting per state (one memory/datapath operation per cycle):

=================  =====================================================
State              Cycles
=================  =====================================================
IDLE/START         1
EXPAND             one per molecule scanned for the candidate list M'
INIT_LATENCY       one per SI (read fastest-available latency)
CLEAN              one per remaining candidate (eq. (4) test)
CHECK_EMPTY        1 per loop iteration
BENEFIT            candidates + (pipeline depth - 1), pipelined
SELECT             1 per loop iteration (latch the arg-max)
COMMIT_ATOM        one per atom pushed into the load FIFO
UPDATE_LATENCY     one per SI (refresh the bestLatency array)
FINALIZE           one per atom of forced completion steps
DONE               1
=================  =====================================================

The produced schedule is **bit-identical** to the software
:class:`HEFScheduler` (asserted in the tests): the FSM model only adds
timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.schedulers.base import SchedulerState
from ..core.schedulers.hef import HEFScheduler
from ..core.si import MoleculeImpl

__all__ = ["FsmTiming", "HEFSchedulerFSM"]


@dataclass
class FsmTiming:
    """Cycle breakdown of one FSM scheduling run."""

    per_state: Dict[str, int] = field(default_factory=dict)

    def add(self, state: str, cycles: int) -> None:
        self.per_state[state] = self.per_state.get(state, 0) + cycles

    @property
    def total_cycles(self) -> int:
        return sum(self.per_state.values())

    def wall_time_us(self, clock_mhz: float = 79.4) -> float:
        """Wall-clock time at the scheduler's clock (Table 3 reports a
        12.596 ns critical path => ~79.4 MHz)."""
        return self.total_cycles / clock_mhz

    def __repr__(self) -> str:
        return f"FsmTiming({self.total_cycles} cycles, {self.per_state})"


class HEFSchedulerFSM(HEFScheduler):
    """HEF with hardware-FSM cycle accounting.

    Produces exactly the schedule of :class:`HEFScheduler`; after each
    :meth:`schedule` call, :attr:`last_timing` holds the FSM cycle
    breakdown.

    Parameters
    ----------
    pipeline_depth:
        Depth of the benefit pipeline (3 in the prototype).
    """

    name = "HEF-FSM"

    def __init__(self, pipeline_depth: int = 3):
        if pipeline_depth < 1:
            raise ValueError(
                f"pipeline depth must be >= 1, got {pipeline_depth}"
            )
        self.pipeline_depth = int(pipeline_depth)
        self.last_timing: Optional[FsmTiming] = None

    def _run(self, state: SchedulerState) -> None:
        timing = FsmTiming()
        timing.add("START", 1)
        # Candidate expansion: the FSM scans every molecule record of
        # every selected SI once.
        scanned = sum(
            len(state.sis[si_name].molecules) for si_name in state.selection
        )
        timing.add("EXPAND", max(1, scanned))
        timing.add("INIT_LATENCY", len(state.selection))

        while True:
            candidates = state.cleaned_candidates()
            # CLEAN walks the remaining (pre-clean) candidate list.
            remaining = len(
                [c for c in state.candidates
                 if state.additional_atoms(c) > 0]
            )
            timing.add("CLEAN", max(1, remaining))
            timing.add("CHECK_EMPTY", 1)
            if not candidates:
                break
            timing.add(
                "BENEFIT", len(candidates) + self.pipeline_depth - 1
            )
            timing.add("SELECT", 1)
            best: Optional[MoleculeImpl] = None
            best_num = 0.0
            best_den = 1.0
            for cand in candidates:
                num = state.expected[cand.si_name] * state.improvement(cand)
                den = float(state.additional_atoms(cand))
                if best is None or num * best_den > best_num * den:
                    best, best_num, best_den = cand, num, den
            if best_num <= 0.0:
                best = self.smallest_step(state, candidates)
                if best is None:
                    break
            timing.add("COMMIT_ATOM", state.additional_atoms(best))
            state.commit(best)
            timing.add("UPDATE_LATENCY", len(state.selection))

        # Forced completion of selected molecules (condition (2)).
        leftover = 0
        for si_name in state.selection:
            leftover += state.additional_atoms(state.selection[si_name])
        if leftover:
            timing.add("FINALIZE", leftover)
        timing.add("DONE", 1)
        self.last_timing = timing

    def decision_vs_reconfig_ratio(
        self, reconfig_cycles: int = 87_403, clock_ratio: float = 100 / 79.4
    ) -> float:
        """How long the last decision took relative to ONE atom load.

        ``clock_ratio`` converts scheduler cycles to core cycles (the
        FSM runs at its own, slower clock).  The paper's point holds
        when this is well below 1.
        """
        if self.last_timing is None:
            raise ValueError("no schedule computed yet")
        core_cycles = self.last_timing.total_cycles * clock_ratio
        return core_cycles / reconfig_cycles
