"""Hardware cost model (Table 3 substitution).

The paper synthesised its HEF scheduler FSM for a Xilinx xc2v3000-6 and
reports slices, LUTs, flip-flops, multipliers, gate equivalents and clock
delay (Table 3).  Without the FPGA toolchain we reproduce those numbers
from a parameterised structural cost model calibrated against the paper's
figures; see :mod:`repro.hw.area`.
"""

from __future__ import annotations

from .area import (
    HardwareCharacteristics,
    HEFSchedulerCostModel,
    average_atom_characteristics,
    table3,
)
from .fsm import FsmTiming, HEFSchedulerFSM

__all__ = [
    "HardwareCharacteristics",
    "HEFSchedulerCostModel",
    "average_atom_characteristics",
    "table3",
    "FsmTiming",
    "HEFSchedulerFSM",
]
