"""Structural area/delay model of the HEF scheduler hardware (Table 3).

The prototype implements HEF as a 12-state FSM with a pipelined benefit
datapath.  Two implementation tricks from Section 5 shape the model:

* the benefit computation (Figure 6, line 20) is *pipelined*, and
* the division is eliminated by cross-multiplying —
  ``(a*b)/c > (d*e)/f`` becomes ``(a*b)*f > (d*e)*c``, valid because the
  additional-atom counts ``c`` and ``f`` are always positive.  This costs
  multipliers (the five MULT18X18 blocks) instead of a divider.

The model decomposes the scheduler into FSM control, the benefit
pipeline, comparator/beat-keeping registers and the candidate-memory
addressing, each with Virtex-II-style costs.  Its parameters are
calibrated so the defaults reproduce Table 3 exactly; scaling the word
widths or the pipeline depth yields credible what-if estimates (used by
the ablation benchmark on scheduler hardware cost).

===================  ====================  =========
Characteristic       Our HEF scheduler     Avg. atom
===================  ====================  =========
# Slices             549                   421
# LUTs               915                   839
# FFs                297                   45
# MULT18X18          5                     0
Gate equivalents     30,769                6,944
Clock delay [ns]     12.596                1.284
===================  ====================  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..calibration import AC_SLICES
from ..errors import CalibrationError

__all__ = [
    "HardwareCharacteristics",
    "HEFSchedulerCostModel",
    "average_atom_characteristics",
    "table3",
]


@dataclass(frozen=True)
class HardwareCharacteristics:
    """Synthesis-result record, mirroring the rows of Table 3."""

    slices: int
    luts: int
    ffs: int
    mult18x18: int
    gate_equivalents: int
    clock_delay_ns: float

    def fits_one_ac(self, ac_slices: int = AC_SLICES) -> bool:
        """Whether the block fits into a single Atom Container."""
        return self.slices <= ac_slices

    def slice_ratio_to(self, other: "HardwareCharacteristics") -> float:
        """Slice count relative to another block (paper: HEF is 1.30x the
        average atom)."""
        return self.slices / other.slices


#: Table 3, right column: the average atom of the H.264 library.
_AVERAGE_ATOM = HardwareCharacteristics(
    slices=421,
    luts=839,
    ffs=45,
    mult18x18=0,
    gate_equivalents=6_944,
    clock_delay_ns=1.284,
)


def average_atom_characteristics() -> HardwareCharacteristics:
    """The paper's average atom synthesis results (Table 3)."""
    return _AVERAGE_ATOM


class HEFSchedulerCostModel:
    """Parameterised cost model of the HEF scheduler FSM.

    Parameters
    ----------
    num_states:
        FSM states (the prototype uses 12).
    benefit_width:
        Bit width of the benefit operands (expected executions x latency
        improvement).  18 bits matches the Virtex-II MULT18X18 fabric.
    pipeline_stages:
        Depth of the benefit pipeline (prototype: 3 — multiply, cross
        multiply, compare).
    candidate_bits:
        Width of a molecule-candidate record in the scheduler memory.
    """

    #: Virtex-II rough equivalences used by the structural model, fitted
    #: against the paper's synthesis results.
    _LUTS_PER_SLICE = 2
    _GE_PER_LUT = 28
    _GE_PER_FF = 7
    _GE_PER_MULT = 595
    _GE_BASE = 95

    def __init__(
        self,
        num_states: int = 12,
        benefit_width: int = 18,
        pipeline_stages: int = 3,
        candidate_bits: int = 48,
    ):
        if num_states < 2:
            raise CalibrationError(f"an FSM needs >= 2 states, got {num_states}")
        if benefit_width <= 0 or pipeline_stages <= 0 or candidate_bits <= 0:
            raise CalibrationError("widths and depths must be positive")
        self.num_states = int(num_states)
        self.benefit_width = int(benefit_width)
        self.pipeline_stages = int(pipeline_stages)
        self.candidate_bits = int(candidate_bits)

    # -- component estimates ---------------------------------------------------

    def _control_luts(self) -> int:
        """FSM next-state and output logic."""
        return 18 * self.num_states

    def _datapath_luts(self) -> int:
        """Benefit pipeline: operand muxes, adders, comparator."""
        return 28 * self.benefit_width + self.candidate_bits * 4 // 2 + 99

    def _ffs(self) -> int:
        """Pipeline registers + state register + bookkeeping counters."""
        state_bits = max(1, (self.num_states - 1).bit_length())
        return (
            self.pipeline_stages * self.benefit_width * 5
            + state_bits
            + 23
        )

    def _multipliers(self) -> int:
        """Cross-multiplied benefit comparison: (a*b), (d*e), and the two
        rescaling products share one multiplier via the pipeline —
        five MULT18X18 blocks in total for 18-bit operands."""
        return 3 + 2 * (self.benefit_width // 18)

    def characteristics(self) -> HardwareCharacteristics:
        """Synthesis-style estimate for the configured scheduler."""
        luts = self._control_luts() + self._datapath_luts()
        ffs = self._ffs()
        slices = max((luts + self._LUTS_PER_SLICE - 1) // self._LUTS_PER_SLICE,
                     (ffs + 1) // 2)
        slices = slices + 3 * self.num_states + 55  # routing / carry chains
        ge = (
            self._GE_BASE
            + luts * self._GE_PER_LUT
            + ffs * self._GE_PER_FF
            + self._multipliers() * self._GE_PER_MULT
        )
        # Clock delay: comparator tree depth grows with the operand width.
        delay_ns = 4.176 + 0.19 * self.benefit_width + 1.4 * (
            self.pipeline_stages / 3.0
        ) + 3.6
        return HardwareCharacteristics(
            slices=slices,
            luts=luts,
            ffs=ffs,
            mult18x18=self._multipliers(),
            gate_equivalents=ge,
            clock_delay_ns=round(delay_ns, 3),
        )

    def __repr__(self) -> str:
        return (
            f"HEFSchedulerCostModel(states={self.num_states}, "
            f"width={self.benefit_width}, stages={self.pipeline_stages})"
        )


def table3(model: Optional[HEFSchedulerCostModel] = None):
    """Reproduce Table 3: (HEF characteristics, average atom).

    With the default model parameters the HEF column matches the paper's
    synthesis results.
    """
    scheduler = (model or HEFSchedulerCostModel()).characteristics()
    return scheduler, average_atom_characteristics()
