"""Pluggable eviction policies for the Atom-Container array.

When the fabric must load an atom and no container is free, one *stale*
atom (an instance the current plan does not retain) loses its container.
Which one is a policy decision; the prototype behaviour corresponds to
LRU.  The ablation benchmarks compare the alternatives — with the
near-total churn between hot spots the choice matters less than the
scheduler, which is itself a reproduction-relevant observation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from operator import attrgetter
from typing import Dict, Sequence, Type

from ..errors import FabricError
from .container import AtomContainer, ContainerState

__all__ = [
    "EvictionPolicy",
    "LRUEviction",
    "FIFOEviction",
    "LFUEviction",
    "MRUEviction",
    "get_eviction_policy",
]


class EvictionPolicy(ABC):
    """Chooses the victim among evictable (stale, loaded) containers."""

    name: str = "abstract"

    @abstractmethod
    def choose(
        self, candidates: Sequence[AtomContainer]
    ) -> AtomContainer:
        """Return the container to evict; ``candidates`` is non-empty."""

    def select(
        self, candidates: Sequence[AtomContainer]
    ) -> AtomContainer:
        """Validated entry point used by the fabric.

        Filters out containers that are not actually evictable (dead or
        not loaded — possible when a fault retired a candidate between
        enumeration and choice) before delegating to :meth:`choose`.
        """
        loaded = ContainerState.LOADED
        usable = [c for c in candidates if c.state is loaded]
        if not usable:
            raise FabricError(
                "eviction requested but no loaded, healthy candidate "
                f"exists among {list(candidates)!r}"
            )
        victim = self.choose(usable)
        if victim not in usable:
            raise FabricError(
                f"eviction policy {self.name} chose a non-candidate "
                f"container {victim!r}"
            )
        return victim

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LRUEviction(EvictionPolicy):
    """Least recently *used* atom first (the default)."""

    name = "LRU"

    _key = attrgetter("last_used", "index")

    def choose(self, candidates):
        return min(candidates, key=self._key)


class FIFOEviction(EvictionPolicy):
    """Oldest *loaded* atom first, regardless of use."""

    name = "FIFO"

    _key = attrgetter("loaded_at", "index")

    def choose(self, candidates):
        return min(candidates, key=self._key)


class LFUEviction(EvictionPolicy):
    """Least frequently used atom first (ties by LRU)."""

    name = "LFU"

    _key = attrgetter("use_count", "last_used", "index")

    def choose(self, candidates):
        return min(candidates, key=self._key)


class MRUEviction(EvictionPolicy):
    """Most recently used first — an intentionally adversarial policy
    for the ablation (evicts exactly what the hot spot just needed)."""

    name = "MRU"

    def choose(self, candidates):
        return max(candidates, key=lambda c: (c.last_used, -c.index))


_POLICIES: Dict[str, Type[EvictionPolicy]] = {
    cls.name: cls
    for cls in (LRUEviction, FIFOEviction, LFUEviction, MRUEviction)
}


def get_eviction_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name (case-insensitive)."""
    try:
        return _POLICIES[name.upper()]()
    except KeyError:
        raise FabricError(
            f"unknown eviction policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
