"""The Atom-Container array with its placement/eviction policy.

The fabric tracks which atom sits in which container and answers the one
question the run-time system keeps asking: *which atoms are usable right
now* (as a molecule vector).  When the configuration port starts a load
it asks the fabric for a container; the fabric prefers empty containers
and otherwise evicts a *stale* atom — one whose loaded instance count
exceeds what the current hot-spot plan retains — least-recently-used
first.

Molecule selection guarantees ``NA <= #ACs``, so as long as the port only
loads atoms of the current plan a victim container always exists; a
:class:`~repro.errors.CapacityError` therefore indicates a scheduler or
selection bug, not an expected run-time condition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.molecule import AtomSpace, Molecule
from ..errors import CapacityError, ContainerFaultError, FabricError
from ..obs.events import Eviction
from ..obs.tracer import NULL_TRACER, Tracer
from .atom import AtomRegistry
from .container import AtomContainer, ContainerState
from .eviction import EvictionPolicy, LRUEviction

__all__ = ["Fabric"]


class Fabric:
    """An array of Atom Containers.

    Parameters
    ----------
    registry:
        The atom-type registry (defines the atom space).
    num_acs:
        Number of Atom Containers.
    tracer:
        Observability sink for eviction events; no-op when omitted.
    """

    def __init__(
        self,
        registry: AtomRegistry,
        num_acs: int,
        eviction_policy: Optional[EvictionPolicy] = None,
        tracer: Optional[Tracer] = None,
    ):
        if num_acs < 0:
            raise FabricError(f"negative AC count: {num_acs}")
        self.registry = registry
        self.num_acs = int(num_acs)
        self.eviction_policy = (
            eviction_policy if eviction_policy is not None else LRUEviction()
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.containers: List[AtomContainer] = [
            AtomContainer(i) for i in range(self.num_acs)
        ]
        for container in self.containers:
            container.owner = self
        self._evictions = 0
        self._reserved = 0
        self._dead = 0
        self._retired = 0
        #: Index trails for state capture: which containers died (hard
        #: faults) and which were retired (administrative shrink), in
        #: order.  A fabric rebuilt by replaying these trails onto a
        #: fresh array is state-identical for arbitration purposes.
        self._dead_indices: List[int] = []
        self._retired_indices: List[int] = []
        #: Loaded containers grouped by atom type, kept current by the
        #: containers' owner notifications (so it stays exact even when
        #: containers are driven directly).  ``_loaded_ver`` bumps on
        #: every edge — an exact, cheap version stamp for availability
        #: snapshots.
        self._loaded_groups: Dict[str, List[AtomContainer]] = {}
        self._loaded_ver = 0
        #: Atom-space position per type and the loaded counts in vector
        #: order — the incrementally maintained :meth:`available` answer.
        self._pos: Dict[str, int] = registry.space._index
        self._avail_counts: List[int] = [0] * registry.space.size
        #: Indices of EMPTY containers (exact, owner-notified); the
        #: placement rule "first empty container" is ``min`` of this set.
        self._empty: Set[int] = {c.index for c in self.containers}

    # -- container owner notifications -----------------------------------------

    def _container_loaded(self, container: AtomContainer) -> None:
        atom_type = container.atom_type
        assert atom_type is not None
        group = self._loaded_groups.get(atom_type)
        if group is None:
            self._loaded_groups[atom_type] = [container]
        else:
            group.append(container)
        self._avail_counts[self._pos[atom_type]] += 1
        self._loaded_ver += 1

    def _container_unloaded(self, container: AtomContainer) -> None:
        atom_type = container.atom_type
        assert atom_type is not None
        self._loaded_groups[atom_type].remove(container)
        self._avail_counts[self._pos[atom_type]] -= 1
        self._loaded_ver += 1

    def _container_emptied(self, container: AtomContainer) -> None:
        self._empty.add(container.index)

    def _container_filled(self, container: AtomContainer) -> None:
        self._empty.discard(container.index)

    @property
    def space(self) -> AtomSpace:
        return self.registry.space

    @property
    def num_evictions(self) -> int:
        """How many loaded atoms were evicted so far (statistics)."""
        return self._evictions

    @property
    def empty_count(self) -> int:
        """Number of EMPTY containers right now."""
        return len(self._empty)

    @property
    def dead_count(self) -> int:
        """Number of permanently faulty (unusable) containers.

        Maintained as a counter (containers only die through
        :meth:`kill_container`) because the degradation checks sit on
        the simulators' per-span hot path.
        """
        return self._dead

    @property
    def retired_count(self) -> int:
        """Number of administratively retired (shrunk-away) containers.

        Kept separate from :attr:`dead_count` so fault accounting —
        breaker trips, degradation flags — is untouched by deliberate
        fleet reconfiguration.
        """
        return self._retired

    @property
    def dead_indices(self) -> Tuple[int, ...]:
        """Indices of hard-faulted containers, in kill order."""
        return tuple(self._dead_indices)

    @property
    def retired_indices(self) -> Tuple[int, ...]:
        """Indices of retired containers, in retirement order."""
        return tuple(self._retired_indices)

    @property
    def usable_acs(self) -> int:
        """The *effective* AC budget: total minus dead and retired.

        The Run-Time Manager plans molecule selections against this
        number, so plans keep fitting as containers die or the fleet
        is shrunk live.
        """
        return self.num_acs - self.dead_count - self._retired

    @property
    def is_degraded(self) -> bool:
        """Whether the fabric lost at least one container to a fault."""
        return self.dead_count > 0

    # -- arbitration leases ----------------------------------------------------

    @property
    def reserved_acs(self) -> int:
        """Containers currently leased out by an arbiter (see
        :mod:`repro.service`).  Leases are pure book-keeping on top of
        the container array: they cap how many ACs concurrent tenants
        may plan against, they do not pin specific containers."""
        return self._reserved

    @property
    def free_acs(self) -> int:
        """Usable containers not currently under a lease."""
        return max(0, self.usable_acs - self._reserved)

    @property
    def overcommitted_acs(self) -> int:
        """How far existing leases exceed the usable budget.

        Becomes positive when container faults shrink :attr:`usable_acs`
        below the already-granted leases; the arbiter preempts tenants
        until this returns to zero.
        """
        return max(0, self._reserved - self.usable_acs)

    def reserve_acs(self, count: int) -> None:
        """Lease ``count`` usable containers to a tenant.

        Raises
        ------
        CapacityError
            When fewer than ``count`` unleased usable containers remain.
            Arbiters are expected to check :attr:`free_acs` first — this
            raise guards against double-granting bugs.
        """
        if count < 0:
            raise FabricError(f"negative lease: {count}")
        if count > self.free_acs:
            raise CapacityError(
                f"cannot lease {count} ACs: only {self.free_acs} of "
                f"{self.usable_acs} usable ACs are free "
                f"({self._reserved} already leased)"
            )
        self._reserved += count

    def release_acs(self, count: int) -> None:
        """Return ``count`` leased containers to the free pool."""
        if count < 0:
            raise FabricError(f"negative lease release: {count}")
        if count > self._reserved:
            raise FabricError(
                f"cannot release {count} ACs: only {self._reserved} leased"
            )
        self._reserved -= count

    # -- availability ----------------------------------------------------------

    def available(self) -> Molecule:
        """The loaded (usable) atoms as a molecule vector.

        Atoms that are still being written do not count — an atom is
        usable on an as-soon-as-available basis, i.e. from the cycle its
        reconfiguration completes.
        """
        return Molecule._make(self.registry.space, tuple(self._avail_counts))

    def loaded_count(self, atom_type: str) -> int:
        """Number of usable instances of one atom type."""
        group = self._loaded_groups.get(atom_type)
        return len(group) if group is not None else 0

    def in_flight(self) -> Optional[str]:
        """The atom type currently being written, if any."""
        for container in self.containers:
            if container.is_loading:
                return container.atom_type
        return None

    def occupancy(self) -> Dict[str, int]:
        """Loaded atom-type counts (diagnostics)."""
        result: Dict[str, int] = {}
        for container in self.containers:
            if container.is_loaded:
                result[container.atom_type] = (
                    result.get(container.atom_type, 0) + 1
                )
        return result

    def container_states(self) -> str:
        """Compact per-container state listing (diagnostics)."""
        parts = []
        for c in self.containers:
            if c.atom_type is not None:
                parts.append(f"AC{c.index}={c.state.value}({c.atom_type})")
            else:
                parts.append(f"AC{c.index}={c.state.value}")
        return ", ".join(parts) if parts else "<no containers>"

    # -- faults ----------------------------------------------------------------

    def kill_container(self, index: int) -> None:
        """Permanently retire one container (hard-fault injection).

        A loading or loaded atom in the container is lost.  The fabric's
        :attr:`usable_acs` budget shrinks accordingly.

        Raises
        ------
        ContainerFaultError
            For an unknown index or an already-dead container.
        """
        if not 0 <= index < self.num_acs:
            raise ContainerFaultError(
                f"cannot kill AC{index}: fabric has {self.num_acs} "
                f"containers"
            )
        container = self.containers[index]
        if container.is_loading:
            container.fail_load()
        container.mark_faulty()
        self._dead += 1
        self._dead_indices.append(index)

    # -- live reconfiguration --------------------------------------------------

    def retire_container(self, index: int) -> None:
        """Administratively remove one container from the fleet.

        Retirement reuses the fault plumbing — the container is marked
        FAULTY so placement, availability and fault injection all skip
        it — but it is counted separately: :attr:`dead_count`,
        :attr:`is_degraded` and everything breaker-related see only
        genuine faults.  A loading atom is lost, exactly as for a kill.

        Raises
        ------
        ContainerFaultError
            For an unknown index or an already dead/retired container.
        """
        if not 0 <= index < self.num_acs:
            raise ContainerFaultError(
                f"cannot retire AC{index}: fabric has {self.num_acs} "
                f"containers"
            )
        container = self.containers[index]
        if container.is_faulty:
            raise ContainerFaultError(
                f"cannot retire AC{index}: container already "
                f"dead or retired"
            )
        if container.is_loading:
            container.fail_load()
        container.mark_faulty()
        self._retired += 1
        self._retired_indices.append(index)

    def add_containers(self, count: int) -> Tuple[int, ...]:
        """Grow the fleet by ``count`` fresh EMPTY containers.

        Returns the indices of the new containers.  New capacity is
        immediately plannable: :attr:`usable_acs` and :attr:`free_acs`
        grow by ``count``.
        """
        if count < 0:
            raise FabricError(f"negative AC growth: {count}")
        new_indices = []
        for _ in range(count):
            container = AtomContainer(self.num_acs)
            container.owner = self
            self.containers.append(container)
            self._empty.add(container.index)
            new_indices.append(container.index)
            self.num_acs += 1
        if count:
            self._loaded_ver += 1
        return tuple(new_indices)

    # -- placement / eviction ----------------------------------------------------

    def _pick_victim(self, retained: Molecule) -> Optional[AtomContainer]:
        """A loaded container whose atom exceeds the retained multiset.

        ``retained`` is the meta-molecule of atoms the current plan wants
        to keep (typically ``sup(M)`` of the active selection).  The
        configured eviction policy chooses among the stale candidates.
        """
        retained_counts = retained.counts
        pos = self._pos
        candidates: List[AtomContainer] = []
        for atom_type, group in self._loaded_groups.items():
            if group and len(group) > retained_counts[pos[atom_type]]:
                candidates.extend(group)
        if not candidates:
            return None
        # The loaded-group index only ever holds LOADED containers, so
        # the validation pass of EvictionPolicy.select (a re-filter plus
        # membership check, per eviction) is redundant here; go straight
        # to the policy's choice.
        return self.eviction_policy.choose(candidates)

    def begin_load(
        self, atom_type: str, now: int, retained: Molecule
    ) -> AtomContainer:
        """Allocate a container and start loading ``atom_type`` into it.

        Empty containers are used first; otherwise a stale atom (w.r.t.
        ``retained``) is evicted, LRU first.

        Raises
        ------
        CapacityError
            When neither a free nor an evictable container exists.
        """
        if atom_type not in self.registry:
            raise FabricError(f"unknown atom type {atom_type!r}")
        target: Optional[AtomContainer] = None
        if self._empty:
            # Placement rule: the first (lowest-index) empty container.
            target = self.containers[min(self._empty)]
        if target is None:
            target = self._pick_victim(retained)
            if target is not None:
                if self.tracer.enabled:
                    self.tracer.emit(
                        Eviction(
                            cycle=now,
                            atom_type=target.atom_type,
                            container_index=target.index,
                        )
                    )
                target.evict()
                self._evictions += 1
        if target is None:
            raise CapacityError(
                f"no free or evictable AC for atom {atom_type!r}: "
                f"{self.usable_acs}/{self.num_acs} ACs usable "
                f"({self.dead_count} dead), retained meta-molecule "
                f"{retained.as_dict()}, per-container occupancy: "
                f"{self.container_states()}"
            )
        target.begin_load(atom_type, now)
        return target

    def touch_atoms(self, molecule: Molecule, now: int) -> None:
        """Mark the loaded instances serving ``molecule`` as just used.

        Keeps the LRU eviction honest: atoms that execute SIs stay,
        leftovers from previous hot spots age out first.
        """
        groups = self._loaded_groups
        for atom_type, wanted in zip(molecule.space.names, molecule.counts):
            if not wanted:
                continue
            group = groups.get(atom_type)
            if not group:
                continue
            if len(group) > wanted:
                # Most-recently-used first; only the instances actually
                # serving the molecule are refreshed.
                group = sorted(group, key=lambda c: (-c.last_used, c.index))
                group = group[:wanted]
            for container in group:
                container.last_used = now
                container.use_count += 1

    def reset(self) -> None:
        """Clear all containers and leases (cold fabric)."""
        for container in self.containers:
            container.owner = None
        self.containers = [AtomContainer(i) for i in range(self.num_acs)]
        for container in self.containers:
            container.owner = self
        self._evictions = 0
        self._reserved = 0
        self._dead = 0
        self._retired = 0
        self._dead_indices = []
        self._retired_indices = []
        self._loaded_groups = {}
        self._avail_counts = [0] * self.registry.space.size
        self._empty = {c.index for c in self.containers}
        self._loaded_ver += 1

    def __repr__(self) -> str:
        loaded = sum(1 for c in self.containers if c.is_loaded)
        loading = sum(1 for c in self.containers if c.is_loading)
        dead = self.dead_count
        retired = self.retired_count
        empty = self.num_acs - loaded - loading - dead - retired
        desc = f"{loaded} loaded, {loading} loading, {empty} empty"
        if dead:
            desc += f", {dead} dead"
        if retired:
            desc += f", {retired} retired"
        return f"Fabric({self.num_acs} ACs: {desc})"
