"""Fault models and retry policies for the reconfigurable fabric.

Real partial reconfiguration is not perfect: bitstream writes through the
SelectMap/ICAP port fail transiently (CRC errors, configuration-clock
glitches) and the reconfigurable regions themselves wear out — an Atom
Container can die permanently after enough reconfiguration cycles.  The
paper's robustness guarantee is that an SI remains *executable* through
all of this, because the base-ISA trap path never depends on the fabric.

This module supplies the *decision* side of that story:

* :class:`FaultModel` — a deterministic, seed-driven oracle the
  :class:`~repro.fabric.reconfig.ReconfigPort` consults whenever a load
  is about to complete.  It answers "did this write succeed?", and if
  not, whether the failure is :attr:`LoadFault.TRANSIENT` (the bitstream
  is garbage, the container survives) or :attr:`LoadFault.PERMANENT`
  (the container itself is dead).
* :class:`RetryPolicy` — how the port reacts to transient failures:
  how often to retry one load and how long to back off between attempts
  (expressed in reconfiguration cycles, the port's natural time unit).

All models are deterministic under a fixed seed: the port drives them
strictly in load-completion order, so a simulation with the same
workload, scheduler and fault seed reproduces bit-for-bit.
"""

from __future__ import annotations

import enum
import random
from abc import ABC, abstractmethod
from typing import Dict, Optional

from ..errors import FabricError

__all__ = [
    "LoadFault",
    "FaultModel",
    "NoFaults",
    "BernoulliLoadFaults",
    "ContainerWearFaults",
    "RetryPolicy",
    "backoff_delay",
]


def backoff_delay(
    base: float,
    factor: float,
    failures: int,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Exponential backoff with optional seeded jitter.

    The delay before the retry after failure number ``failures``
    (1-based) is ``base * factor**(failures - 1)``, stretched by up to
    ``jitter`` (a fraction in ``[0, 1]``) drawn from ``rng``.  The RNG
    is the *caller's* — always an explicitly seeded
    :class:`random.Random`, never module-level entropy — so a retried
    run replays the identical delay schedule.  Both the fabric's
    :class:`RetryPolicy` (delays in reconfiguration cycles) and the
    sweep supervisor (:mod:`repro.exec.supervise`, delays in seconds)
    compute their backoff through this one helper.
    """
    if failures <= 0:
        return 0.0
    delay = base * factor ** (failures - 1)
    if jitter > 0.0 and rng is not None:
        delay += delay * jitter * rng.random()
    return delay


class LoadFault(enum.Enum):
    """Outcome classification of a failed atom load."""

    #: The bitstream write failed but the container is healthy; a retry
    #: of the same load can succeed.
    TRANSIENT = "transient"
    #: The Atom Container itself is broken; no future load into it can
    #: succeed and the fabric must shrink its usable-AC count.
    PERMANENT = "permanent"


class FaultModel(ABC):
    """Oracle deciding the fate of each completing atom load.

    The reconfiguration port calls :meth:`check_load` exactly once per
    load completion (including retries), in strict simulation-time
    order.  Implementations must be deterministic functions of their
    constructor arguments and the call sequence, so that
    :meth:`reset` restores bit-for-bit reproducibility across runs.
    """

    name: str = "abstract"

    @abstractmethod
    def check_load(
        self, atom_type: str, container_index: int, cycle: int
    ) -> Optional[LoadFault]:
        """Fault verdict for one completing load, or ``None`` on success."""

    def reset(self) -> None:
        """Restore the initial state (start of a fresh run)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoFaults(FaultModel):
    """The perfect fabric: every load succeeds (the default)."""

    name = "none"

    def check_load(
        self, atom_type: str, container_index: int, cycle: int
    ) -> Optional[LoadFault]:
        return None


class BernoulliLoadFaults(FaultModel):
    """Independent transient failure of each load with probability ``rate``.

    Models CRC/SelectMap bit errors: each completing bitstream write
    fails with the given probability, independently of history.  The
    container survives; the port may retry under its
    :class:`RetryPolicy`.

    Parameters
    ----------
    rate:
        Per-load failure probability in ``[0, 1]``.
    seed:
        Seed of the private RNG; fixes the exact failure schedule.
    """

    name = "bernoulli"

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise FabricError(
                f"fault rate must be within [0, 1], got {rate!r}"
            )
        self.rate = float(rate)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def check_load(
        self, atom_type: str, container_index: int, cycle: int
    ) -> Optional[LoadFault]:
        if self.rate == 0.0:
            return None
        if self.rate >= 1.0 or self._rng.random() < self.rate:
            return LoadFault.TRANSIENT
        return None

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return (
            f"BernoulliLoadFaults(rate={self.rate}, seed={self.seed})"
        )


class ContainerWearFaults(FaultModel):
    """Permanent Atom-Container death after a fixed number of load cycles.

    Every completed write into a container ages it by one load cycle;
    the write that exceeds ``lifetime_loads`` fails with
    :attr:`LoadFault.PERMANENT` and the container is marked dead.  With
    ``lifetime_loads=0`` every container dies on its very first load —
    the all-ACs-dead chaos scenario.

    Parameters
    ----------
    lifetime_loads:
        How many loads a container survives (>= 0).
    """

    name = "wear"

    def __init__(self, lifetime_loads: int):
        if lifetime_loads < 0:
            raise FabricError(
                f"container lifetime must be >= 0, got {lifetime_loads!r}"
            )
        self.lifetime_loads = int(lifetime_loads)
        self._wear: Dict[int, int] = {}

    def wear_of(self, container_index: int) -> int:
        """Accumulated load cycles of one container (diagnostics)."""
        return self._wear.get(container_index, 0)

    def check_load(
        self, atom_type: str, container_index: int, cycle: int
    ) -> Optional[LoadFault]:
        wear = self._wear.get(container_index, 0) + 1
        self._wear[container_index] = wear
        if wear > self.lifetime_loads:
            return LoadFault.PERMANENT
        return None

    def reset(self) -> None:
        self._wear.clear()

    def __repr__(self) -> str:
        return f"ContainerWearFaults(lifetime_loads={self.lifetime_loads})"


class RetryPolicy:
    """How the reconfiguration port reacts to transient load failures.

    A failed load may be re-attempted up to ``max_retries`` times; the
    ``k``-th retry is delayed by ``backoff_cycles * backoff_factor**(k-1)``
    reconfiguration cycles (exponential backoff — a real configuration
    controller re-arms the SelectMap interface before rewriting).  When
    the retry budget is exhausted the load is *abandoned*: the affected
    SIs simply keep executing through the base-ISA trap path
    (``on_exhausted="software"``, the graceful default), or, for strict
    test setups, a :class:`~repro.errors.TransientLoadError` is raised
    (``on_exhausted="raise"``).

    Parameters
    ----------
    max_retries:
        Additional attempts after the first failure (0 = never retry).
    backoff_cycles:
        Base delay before the first retry, in cycles.
    backoff_factor:
        Multiplicative growth of the delay per further retry (>= 1).
    on_exhausted:
        ``"software"`` (degrade gracefully) or ``"raise"`` (fail fast).
    jitter:
        Fraction in ``[0, 1]`` by which each backoff delay may be
        stretched (0 = the exact exponential schedule).  Jitter is drawn
        from a *private* RNG seeded by ``seed`` — never from the shared
        module-level generator — so retried fault runs stay
        bit-reproducible (RL001).
    seed:
        Seed of the jitter RNG; :meth:`reset` replays the identical
        jitter schedule for a fresh run.
    """

    def __init__(
        self,
        max_retries: int = 3,
        backoff_cycles: int = 0,
        backoff_factor: float = 2.0,
        on_exhausted: str = "software",
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if max_retries < 0:
            raise FabricError(
                f"max_retries must be >= 0, got {max_retries!r}"
            )
        if backoff_cycles < 0:
            raise FabricError(
                f"backoff_cycles must be >= 0, got {backoff_cycles!r}"
            )
        if backoff_factor < 1.0:
            raise FabricError(
                f"backoff_factor must be >= 1, got {backoff_factor!r}"
            )
        if on_exhausted not in ("software", "raise"):
            raise FabricError(
                f"on_exhausted must be 'software' or 'raise', "
                f"got {on_exhausted!r}"
            )
        if not 0.0 <= jitter <= 1.0:
            raise FabricError(
                f"jitter must be within [0, 1], got {jitter!r}"
            )
        self.max_retries = int(max_retries)
        self.backoff_cycles = int(backoff_cycles)
        self.backoff_factor = float(backoff_factor)
        self.on_exhausted = on_exhausted
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def allows_retry(self, failures: int) -> bool:
        """May a load that failed ``failures`` times be re-attempted?"""
        return failures <= self.max_retries

    def delay(self, failures: int) -> int:
        """Backoff (in cycles) before the retry after failure number
        ``failures`` (1-based)."""
        return int(
            backoff_delay(
                self.backoff_cycles,
                self.backoff_factor,
                failures,
                jitter=self.jitter,
                rng=self._rng,
            )
        )

    def reset(self) -> None:
        """Restore the initial jitter schedule (start of a fresh run)."""
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"backoff_cycles={self.backoff_cycles}, "
            f"backoff_factor={self.backoff_factor}, "
            f"on_exhausted={self.on_exhausted!r}, "
            f"jitter={self.jitter}, seed={self.seed})"
        )
