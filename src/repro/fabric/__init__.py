"""Reconfigurable-fabric substrate.

Models the hardware the run-time system drives: the atom-type registry
(with per-type partial-bitstream sizes), the Atom Containers, the
eviction policy, the single serial reconfiguration port (SelectMap/ICAP
in the prototype) and the fault models describing how real partial
reconfiguration misbehaves (transient bitstream errors, permanent
container wear-out).
"""

from __future__ import annotations

from .atom import AtomType, AtomRegistry
from .container import AtomContainer, ContainerState
from .eviction import (
    EvictionPolicy,
    LRUEviction,
    FIFOEviction,
    LFUEviction,
    MRUEviction,
    get_eviction_policy,
)
from .fabric import Fabric
from .faults import (
    LoadFault,
    FaultModel,
    NoFaults,
    BernoulliLoadFaults,
    ContainerWearFaults,
    RetryPolicy,
)
from .reconfig import ReconfigPort, LoadCompletion

__all__ = [
    "AtomType",
    "AtomRegistry",
    "AtomContainer",
    "ContainerState",
    "EvictionPolicy",
    "LRUEviction",
    "FIFOEviction",
    "LFUEviction",
    "MRUEviction",
    "get_eviction_policy",
    "Fabric",
    "LoadFault",
    "FaultModel",
    "NoFaults",
    "BernoulliLoadFaults",
    "ContainerWearFaults",
    "RetryPolicy",
    "ReconfigPort",
    "LoadCompletion",
]
