"""Reconfigurable-fabric substrate.

Models the hardware the run-time system drives: the atom-type registry
(with per-type partial-bitstream sizes), the Atom Containers, the
eviction policy and the single serial reconfiguration port
(SelectMap/ICAP in the prototype).
"""

from .atom import AtomType, AtomRegistry
from .container import AtomContainer, ContainerState
from .eviction import (
    EvictionPolicy,
    LRUEviction,
    FIFOEviction,
    LFUEviction,
    MRUEviction,
    get_eviction_policy,
)
from .fabric import Fabric
from .reconfig import ReconfigPort, LoadCompletion

__all__ = [
    "AtomType",
    "AtomRegistry",
    "AtomContainer",
    "ContainerState",
    "EvictionPolicy",
    "LRUEviction",
    "FIFOEviction",
    "LFUEviction",
    "MRUEviction",
    "get_eviction_policy",
    "Fabric",
    "ReconfigPort",
    "LoadCompletion",
]
