"""Atom types and their physical properties.

An **atom** is an elementary data path that can be re-loaded at run time
into an Atom Container.  Physically it is a partial FPGA bitstream; the
paper reports an average size of 60,488 bytes, loaded at 66 MB/s through
the SelectMap/ICAP port, for an average reconfiguration time of
874.03 microseconds (Section 5, Table 3: average atom 421 slices).

The :class:`AtomRegistry` maps atom-type names to their properties and
derives the :class:`~repro.core.molecule.AtomSpace` all molecules of the
application live in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from ..calibration import (
    BITSTREAM_BYTES_AVG,
    RECONFIG_CYCLES_PER_ATOM,
    bitstream_bytes_to_cycles,
)
from ..core.molecule import AtomSpace
from ..errors import InvalidMoleculeError, UnknownAtomTypeError

__all__ = ["AtomType", "AtomRegistry"]


@dataclass(frozen=True)
class AtomType:
    """Physical description of one atom type.

    Attributes
    ----------
    name:
        The atom-type mnemonic (e.g. ``"TRANSFORM"``).
    bitstream_bytes:
        Size of the partial bitstream; determines the reconfiguration
        latency.  Defaults to the paper's average.
    slices:
        FPGA slices the atom occupies (must fit one Atom Container).
    description:
        Human-readable summary of the data path.
    """

    name: str
    bitstream_bytes: int = BITSTREAM_BYTES_AVG
    slices: int = 421
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidMoleculeError("atom-type name must be non-empty")
        if self.bitstream_bytes <= 0:
            raise InvalidMoleculeError(
                f"atom {self.name}: bitstream size must be positive"
            )
        if self.slices <= 0:
            raise InvalidMoleculeError(
                f"atom {self.name}: slice count must be positive"
            )

    @property
    def reconfig_cycles(self) -> int:
        """Cycles the configuration port needs to load this atom."""
        return bitstream_bytes_to_cycles(self.bitstream_bytes)


class AtomRegistry:
    """Ordered registry of the application's atom types."""

    def __init__(self, atom_types: Iterable[AtomType]):
        self._types: Dict[str, AtomType] = {}
        for atom_type in atom_types:
            if atom_type.name in self._types:
                raise InvalidMoleculeError(
                    f"duplicate atom type {atom_type.name!r}"
                )
            self._types[atom_type.name] = atom_type
        if not self._types:
            raise InvalidMoleculeError("registry needs at least one atom type")
        self._space = AtomSpace(tuple(self._types))

    @classmethod
    def uniform(cls, names: Iterable[str],
                bitstream_bytes: int = BITSTREAM_BYTES_AVG) -> "AtomRegistry":
        """Registry in which every atom has the same bitstream size."""
        return cls(AtomType(name, bitstream_bytes) for name in names)

    @property
    def space(self) -> AtomSpace:
        """The molecule atom space induced by this registry."""
        return self._space

    @property
    def names(self) -> Tuple[str, ...]:
        return self._space.names

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[AtomType]:
        return iter(self._types.values())

    def __contains__(self, name: object) -> bool:
        return name in self._types

    def get(self, name: str) -> AtomType:
        try:
            return self._types[name]
        except KeyError:
            raise UnknownAtomTypeError(
                f"unknown atom type {name!r}; known: {list(self._types)}"
            ) from None

    def reconfig_cycles(self, name: str) -> int:
        """Reconfiguration latency of one atom type, in cycles."""
        return self.get(name).reconfig_cycles

    def average_reconfig_cycles(self) -> float:
        """Mean reconfiguration latency over all atom types.

        The H.264 registry is calibrated so this is close to the paper's
        874.03 us (87,403 cycles at 100 MHz).
        """
        return sum(t.reconfig_cycles for t in self._types.values()) / len(
            self._types
        )

    def __repr__(self) -> str:
        return (
            f"AtomRegistry({len(self._types)} atom types, "
            f"avg {self.average_reconfig_cycles():.0f} cycles/reconfig)"
        )


#: Convenience: the paper's average reconfiguration latency in cycles.
AVERAGE_RECONFIG_CYCLES = RECONFIG_CYCLES_PER_ATOM
