"""Atom Containers — the reconfigurable regions of the fabric.

An **Atom Container (AC)** is a small reconfigurable region (1024 slices
in the prototype) that can be dynamically loaded with one atom.  A
container is either empty, currently being written by the configuration
port, or holding a loaded (usable) atom.
"""

from __future__ import annotations

import enum
from typing import Optional, Protocol

from ..errors import ContainerFaultError, FabricError, TransientLoadError

__all__ = ["ContainerState", "AtomContainer"]


class _ContainerOwner(Protocol):
    """What a container reports its state edges to."""

    def _container_loaded(self, container: "AtomContainer") -> None: ...

    def _container_unloaded(self, container: "AtomContainer") -> None: ...

    def _container_emptied(self, container: "AtomContainer") -> None: ...

    def _container_filled(self, container: "AtomContainer") -> None: ...


class ContainerState(enum.Enum):
    """Life cycle of an Atom Container."""

    EMPTY = "empty"
    LOADING = "loading"
    LOADED = "loaded"
    #: Permanently dead (hard fault / wear-out); never usable again.
    FAULTY = "faulty"


class AtomContainer:
    """State of a single Atom Container."""

    __slots__ = (
        "index", "state", "atom_type", "loaded_at", "last_used",
        "use_count", "owner",
    )

    def __init__(self, index: int):
        self.index = int(index)
        self.state = ContainerState.EMPTY
        #: Name of the atom currently loading/loaded, or None when empty.
        self.atom_type: Optional[str] = None
        #: Cycle at which the current atom finished loading.
        self.loaded_at: int = -1
        #: Cycle of the last SI execution that used this atom (LRU key).
        self.last_used: int = -1
        #: Number of uses since the atom was loaded (LFU key).
        self.use_count: int = 0
        #: The owning fabric, notified on loaded-set transitions so it
        #: can keep its per-type container index without rescanning.
        #: The notification sits here (not in the fabric methods)
        #: because containers are legitimately driven directly in tests
        #: and tools — every loaded/unloaded edge passes through these
        #: state methods.
        self.owner: Optional["_ContainerOwner"] = None

    @property
    def is_empty(self) -> bool:
        return self.state is ContainerState.EMPTY

    @property
    def is_loaded(self) -> bool:
        return self.state is ContainerState.LOADED

    @property
    def is_loading(self) -> bool:
        return self.state is ContainerState.LOADING

    @property
    def is_faulty(self) -> bool:
        return self.state is ContainerState.FAULTY

    def begin_load(self, atom_type: str, now: int) -> None:
        """Start writing ``atom_type`` into this container.

        Any previously loaded atom is evicted at this moment — partial
        reconfiguration overwrites the region, so the old atom stops
        being usable as soon as the write begins.
        """
        if self.is_loading:
            raise FabricError(
                f"AC{self.index} is already being reconfigured "
                f"(with {self.atom_type})"
            )
        if self.is_faulty:
            raise ContainerFaultError(
                f"AC{self.index} is permanently faulty and cannot be loaded"
            )
        if self.owner is not None:
            if self.state is ContainerState.LOADED:
                self.owner._container_unloaded(self)
            elif self.state is ContainerState.EMPTY:
                self.owner._container_filled(self)
        self.state = ContainerState.LOADING
        self.atom_type = atom_type
        self.loaded_at = -1
        self.last_used = now
        self.use_count = 0

    def complete_load(self, now: int) -> None:
        """The configuration port finished writing this container."""
        if not self.is_loading:
            raise FabricError(
                f"AC{self.index} completed a load but was not loading"
            )
        self.state = ContainerState.LOADED
        self.loaded_at = now
        self.last_used = now
        if self.owner is not None:
            self.owner._container_loaded(self)

    def fail_load(self) -> None:
        """The write into this container failed transiently.

        The partial bitstream is garbage, so the container reverts to
        empty (the previous atom was already overwritten when the load
        began); the region itself stays healthy and re-loadable.
        """
        if not self.is_loading:
            raise TransientLoadError(
                f"AC{self.index} reported a load failure but was not loading"
            )
        self.state = ContainerState.EMPTY
        self.atom_type = None
        self.loaded_at = -1
        self.use_count = 0
        if self.owner is not None:
            self.owner._container_emptied(self)

    def mark_faulty(self) -> None:
        """Permanently retire this container (hard fault / wear-out)."""
        if self.is_faulty:
            raise ContainerFaultError(
                f"AC{self.index} is already marked faulty"
            )
        if self.owner is not None:
            if self.state is ContainerState.LOADED:
                self.owner._container_unloaded(self)
            elif self.state is ContainerState.EMPTY:
                self.owner._container_filled(self)
        self.state = ContainerState.FAULTY
        self.atom_type = None
        self.loaded_at = -1
        self.use_count = 0

    def evict(self) -> None:
        """Drop the loaded atom (bookkeeping-only; no port time needed)."""
        if not self.is_loaded:
            raise FabricError(f"cannot evict AC{self.index}: not loaded")
        if self.owner is not None:
            self.owner._container_unloaded(self)
        self.state = ContainerState.EMPTY
        self.atom_type = None
        self.loaded_at = -1
        self.use_count = 0
        if self.owner is not None:
            self.owner._container_emptied(self)

    def touch(self, now: int) -> None:
        """Record a use of the loaded atom (LRU/LFU eviction keys)."""
        self.last_used = now
        self.use_count += 1

    def __repr__(self) -> str:
        return (
            f"AtomContainer(#{self.index}, {self.state.value}"
            f"{', ' + self.atom_type if self.atom_type else ''})"
        )
