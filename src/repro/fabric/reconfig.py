"""The reconfiguration port.

The prototype loads partial bitstreams through a single SelectMap/ICAP
interface: exactly one atom can be in flight at any time, and loading an
average atom takes 874.03 microseconds — several orders of magnitude
longer than an SI execution, which is why the *order* of loads (the
scheduling problem of Section 4) dominates hot-spot performance.

:class:`ReconfigPort` owns the pending-load FIFO and the in-flight load.
The simulator drives it with :meth:`advance_to`, collecting
:class:`LoadCompletion` events; a hot-spot switch replaces the pending
FIFO via :meth:`replace_queue` (the in-flight load always completes —
aborting a partial bitstream write would leave the container unusable
anyway).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

from ..core.molecule import Molecule
from ..errors import FabricError
from .fabric import Fabric

__all__ = ["LoadCompletion", "ReconfigPort"]


@dataclass(frozen=True)
class LoadCompletion:
    """One finished atom load."""

    cycle: int
    atom_type: str
    container_index: int


class ReconfigPort:
    """Serial atom loader attached to a fabric."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self._pending: Deque[str] = deque()
        #: The meta-molecule of atoms the active plan retains (eviction
        #: reference); updated on every :meth:`replace_queue`.
        self._retained: Molecule = fabric.space.zero()
        self._in_flight: Optional[str] = None
        self._in_flight_container: Optional[int] = None
        self._busy_until: int = 0
        self._loads_started = 0
        self._loads_completed = 0

    # -- statistics ------------------------------------------------------------

    @property
    def loads_started(self) -> int:
        return self._loads_started

    @property
    def loads_completed(self) -> int:
        return self._loads_completed

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def is_idle(self) -> bool:
        return self._in_flight is None and not self._pending

    # -- queue management --------------------------------------------------------

    def replace_queue(
        self, atom_types: Sequence[str], retained: Molecule, now: int
    ) -> None:
        """Install a new load schedule (hot-spot switch).

        Pending loads of the previous plan are dropped; the in-flight
        load, if any, completes normally.  ``retained`` becomes the new
        eviction reference.

        The caller computes its load list from the *completed* fabric
        contents, so an atom currently being written is invisible to it.
        If that in-flight atom is part of the new plan, its completion
        will serve the plan — the duplicate entry is removed from the
        queue here (otherwise a plan that exactly fills the fabric could
        end up one container short).
        """
        pending = list(atom_types)
        in_flight = self._in_flight
        if (
            in_flight is not None
            and in_flight in pending
            and self.fabric.loaded_count(in_flight) + 1
            <= retained.count(in_flight)
        ):
            pending.remove(in_flight)
        self._pending = deque(pending)
        self._retained = retained
        self._maybe_start(now)

    def enqueue(self, atom_types: Sequence[str], now: int) -> None:
        """Append loads to the current plan (keeps the retained set)."""
        self._pending.extend(atom_types)
        self._maybe_start(now)

    # -- time advancement -----------------------------------------------------------

    def _maybe_start(self, now: int) -> None:
        if self._in_flight is not None or not self._pending:
            return
        atom_type = self._pending.popleft()
        container = self.fabric.begin_load(atom_type, now, self._retained)
        duration = self.fabric.registry.reconfig_cycles(atom_type)
        self._in_flight = atom_type
        self._in_flight_container = container.index
        self._busy_until = now + duration
        self._loads_started += 1

    def next_completion(self) -> Optional[int]:
        """Cycle of the next load completion, or None when idle."""
        return self._busy_until if self._in_flight is not None else None

    def advance_to(self, cycle: int) -> List[LoadCompletion]:
        """Process all completions up to and including ``cycle``.

        Completed loads immediately trigger the next pending load (the
        port never idles while work is queued).  Returns the completion
        events in time order.
        """
        events: List[LoadCompletion] = []
        while self._in_flight is not None and self._busy_until <= cycle:
            finish = self._busy_until
            container = self.fabric.containers[self._in_flight_container]
            if container.atom_type != self._in_flight:  # pragma: no cover
                raise FabricError(
                    f"in-flight bookkeeping mismatch on AC"
                    f"{self._in_flight_container}"
                )
            container.complete_load(finish)
            events.append(
                LoadCompletion(
                    cycle=finish,
                    atom_type=self._in_flight,
                    container_index=container.index,
                )
            )
            self._loads_completed += 1
            self._in_flight = None
            self._in_flight_container = None
            self._maybe_start(finish)
        return events

    def drain(self) -> List[LoadCompletion]:
        """Run the port until every queued load completed (test helper)."""
        events: List[LoadCompletion] = []
        while self._in_flight is not None:
            events.extend(self.advance_to(self._busy_until))
        return events

    def __repr__(self) -> str:
        flight = self._in_flight or "-"
        return (
            f"ReconfigPort(in_flight={flight}, pending={len(self._pending)}, "
            f"busy_until={self._busy_until})"
        )
