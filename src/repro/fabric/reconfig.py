"""The reconfiguration port.

The prototype loads partial bitstreams through a single SelectMap/ICAP
interface: exactly one atom can be in flight at any time, and loading an
average atom takes 874.03 microseconds — several orders of magnitude
longer than an SI execution, which is why the *order* of loads (the
scheduling problem of Section 4) dominates hot-spot performance.

:class:`ReconfigPort` owns the pending-load FIFO and the in-flight load.
The simulator drives it with :meth:`advance_to`, collecting
:class:`LoadCompletion` events; a hot-spot switch replaces the pending
FIFO via :meth:`replace_queue` (the in-flight load always completes —
aborting a partial bitstream write would leave the container unusable
anyway).

Fault injection
---------------
A :class:`~repro.fabric.faults.FaultModel` is consulted once per load
completion.  A *transient* failure reverts the container to empty and
re-enqueues the load under the port's
:class:`~repro.fabric.faults.RetryPolicy` (exponential backoff expressed
in reconfiguration cycles, modelled as extra in-flight time of the
retry).  A *permanent* failure kills the container, shrinking the
fabric's usable-AC budget.  Loads whose retry budget is exhausted, or
that no longer fit the degraded fabric, are *abandoned* — the affected
SIs keep executing via the base-ISA trap path, so an SI is always
executable no matter what the fabric does.

Speculative lane
----------------
The PREFETCH scheduler (:mod:`repro.core.schedulers.prefetch`) issues
atom loads for a *predicted* next hot spot through
:meth:`ReconfigPort.enqueue_speculative`.  Speculative loads live in a
second FIFO that only drains while the normal queue is empty (idle
windows of the bus), may only fill empty containers or evict *stale*
atoms — never one the retained set (the current selection) needs, the
same victim rule normal loads obey — and are never retried on a fault.
When the current plan needs every loaded atom a speculative load is
dropped at zero bus cost instead of raising.  At the next
hot-spot switch :meth:`ReconfigPort.cancel_speculative` settles the
lane: still-pending entries are cancelled (zero bus cost) and the
caller classifies everything started as hit or wasted.  An in-flight
speculative load is simply re-labelled as a normal load — if the new
plan wants its atom the existing :meth:`replace_queue` dedup makes the
completion serve the plan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from ..core.molecule import Molecule
from ..errors import CapacityError, FabricError, SimulationError, TransientLoadError
from ..obs.events import (
    ContainerDead,
    LoadAbandoned,
    LoadComplete as LoadCompleteEvent,
    LoadFailed,
    LoadRetry,
    LoadStart,
)
from ..obs.tracer import NULL_TRACER, Tracer
from .fabric import Fabric
from .faults import FaultModel, LoadFault, NoFaults, RetryPolicy

__all__ = ["LoadCompletion", "SpeculationReport", "ReconfigPort"]


@dataclass(frozen=True)
class LoadCompletion:
    """One finished atom load."""

    cycle: int
    atom_type: str
    container_index: int


@dataclass(frozen=True)
class SpeculationReport:
    """What happened to one phase's speculative loads (settled lane).

    Returned by :meth:`ReconfigPort.cancel_speculative`.  ``completed``
    atoms are loaded and usable; ``in_flight`` is the one atom still
    being written (re-labelled normal by the cancel); ``dropped`` atoms
    never touched the bus (no free or evictable container, or still
    pending at the cancel); ``failed`` atoms were started but killed by
    the fault model
    (speculative loads are not retried).
    """

    completed: Tuple[str, ...]
    in_flight: Optional[str]
    dropped: Tuple[str, ...]
    failed: Tuple[str, ...]

    @property
    def started(self) -> Tuple[str, ...]:
        """Atoms that actually occupied the bus (cost bus cycles)."""
        extra = (self.in_flight,) if self.in_flight is not None else ()
        return self.completed + self.failed + extra

    @property
    def issued(self) -> int:
        """Total speculative atoms the report settles."""
        return len(self.started) + len(self.dropped)


class ReconfigPort:
    """Serial atom loader attached to a fabric.

    Parameters
    ----------
    fabric:
        The Atom-Container array to load into.
    fault_model:
        Oracle deciding the fate of each completing load; the perfect
        fabric (:class:`~repro.fabric.faults.NoFaults`) when omitted.
    retry_policy:
        Reaction to transient load failures; sensible defaults apply
        when omitted.
    tracer:
        Observability sink for load start/complete/fail/retry/abandon
        events; the no-op tracer when omitted (zero overhead).
    """

    def __init__(
        self,
        fabric: Fabric,
        fault_model: Optional[FaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.fabric = fabric
        self.fault_model = fault_model if fault_model is not None else NoFaults()
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._pending: Deque[str] = deque()
        #: The meta-molecule of atoms the active plan retains (eviction
        #: reference); updated on every :meth:`replace_queue`.
        self._retained: Molecule = fabric.space.zero()
        self._in_flight: Optional[str] = None
        self._in_flight_container: Optional[int] = None
        self._in_flight_failures: int = 0
        self._busy_until: int = 0
        self._loads_started = 0
        self._loads_completed = 0
        self._loads_failed = 0
        self._loads_retried = 0
        self._loads_abandoned = 0
        self._busy_cycles = 0
        #: Speculative lane: pending prefetch loads (drained only while
        #: the normal queue is idle) and the current phase's settlement
        #: bookkeeping (see :meth:`cancel_speculative`).
        self._spec_pending: Deque[str] = deque()
        self._in_flight_spec = False
        self._spec_completed: List[str] = []
        self._spec_dropped: List[str] = []
        self._spec_failed: List[str] = []

    # -- statistics ------------------------------------------------------------

    @property
    def loads_started(self) -> int:
        return self._loads_started

    @property
    def loads_completed(self) -> int:
        return self._loads_completed

    @property
    def loads_failed(self) -> int:
        """Load completions the fault model failed (transient or permanent)."""
        return self._loads_failed

    @property
    def loads_retried(self) -> int:
        """Failed loads that were re-attempted under the retry policy."""
        return self._loads_retried

    @property
    def loads_abandoned(self) -> int:
        """Loads given up on (retry budget exhausted or fabric too degraded).

        Every abandoned load is survivable: the affected SI keeps
        executing through the base-ISA trap path.
        """
        return self._loads_abandoned

    @property
    def busy_cycles(self) -> int:
        """Cycles the bus spent (or is committed to spend) writing.

        Accumulated when a load *starts* — retry backoff included, so at
        any moment this is the port's total committed bus occupancy; at
        most one not-yet-finished load is counted ahead of time.
        """
        return self._busy_cycles

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def is_idle(self) -> bool:
        return self._in_flight is None and not self._pending

    @property
    def is_retrying(self) -> bool:
        """Whether the current in-flight load is a retry attempt."""
        return self._in_flight is not None and self._in_flight_failures > 0

    # -- queue management --------------------------------------------------------

    def replace_queue(
        self, atom_types: Sequence[str], retained: Molecule, now: int
    ) -> None:
        """Install a new load schedule (hot-spot switch).

        Pending loads of the previous plan are dropped; the in-flight
        load, if any, completes normally.  ``retained`` becomes the new
        eviction reference.

        The caller computes its load list from the *completed* fabric
        contents, so an atom currently being written is invisible to it.
        If that in-flight atom is part of the new plan, its completion
        will serve the plan — the duplicate entry is removed from the
        queue here (otherwise a plan that exactly fills the fabric could
        end up one container short).
        """
        pending = list(atom_types)
        in_flight = self._in_flight
        if (
            in_flight is not None
            and in_flight in pending
            and self.fabric.loaded_count(in_flight) + 1
            <= retained.count(in_flight)
        ):
            pending.remove(in_flight)
        self._pending = deque(pending)
        self._retained = retained
        self._maybe_start(now)

    def enqueue(self, atom_types: Sequence[str], now: int) -> None:
        """Append loads to the current plan (keeps the retained set)."""
        self._pending.extend(atom_types)
        self._maybe_start(now)

    # -- speculative lane -------------------------------------------------------

    @property
    def speculation_outstanding(self) -> bool:
        """Whether any speculative state awaits settlement."""
        return bool(
            self._spec_pending
            or self._in_flight_spec
            or self._spec_completed
            or self._spec_dropped
            or self._spec_failed
        )

    def enqueue_speculative(
        self, atom_types: Sequence[str], now: int
    ) -> None:
        """Queue prefetch loads for a predicted next hot spot.

        Speculative loads only run while the normal queue is idle, and
        may evict only stale atoms (never one the retained set needs);
        atoms that find no free or evictable container are dropped
        (settled as such by :meth:`cancel_speculative`).
        """
        self._spec_pending.extend(atom_types)
        self._maybe_start(now)

    def cancel_speculative(self) -> SpeculationReport:
        """Settle the speculative lane (hot-spot switch).

        Still-pending speculative loads are cancelled (zero bus cost)
        and reported as dropped; an in-flight speculative load keeps
        writing but is re-labelled as a normal load, so the existing
        :meth:`replace_queue` dedup lets its completion serve the new
        plan when the atom is wanted.  All per-phase speculative
        bookkeeping is reset.
        """
        dropped = self._spec_dropped + list(self._spec_pending)
        self._spec_pending.clear()
        in_flight = self._in_flight if self._in_flight_spec else None
        self._in_flight_spec = False
        report = SpeculationReport(
            completed=tuple(self._spec_completed),
            in_flight=in_flight,
            dropped=tuple(dropped),
            failed=tuple(self._spec_failed),
        )
        self._spec_completed = []
        self._spec_dropped = []
        self._spec_failed = []
        return report

    # -- time advancement -----------------------------------------------------------

    def _start_load(
        self,
        atom_type: str,
        now: int,
        delay: int = 0,
        failures: int = 0,
        speculative: bool = False,
    ) -> bool:
        """Begin one load (fresh or retry); False when it must be abandoned.

        A :class:`~repro.errors.CapacityError` on a *degraded* fabric is
        an expected consequence of dead containers — the load is dropped
        and the SIs fall back to software.  On a healthy fabric it still
        indicates a scheduler bug and propagates.

        A *speculative* load may fill an empty container or evict a
        stale atom (one the retained set does not need — the same victim
        rule normal loads use), but when the current plan needs every
        loaded atom it is dropped instead of raising.
        """
        try:
            container = self.fabric.begin_load(atom_type, now, self._retained)
        except CapacityError:
            if speculative:
                # Nothing evictable: the current selection needs every
                # loaded atom.  Drop the speculation at zero bus cost.
                self._spec_dropped.append(atom_type)
                return False
            if not self.fabric.is_degraded:
                raise
            self._loads_abandoned += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    LoadAbandoned(
                        cycle=now,
                        atom_type=atom_type,
                        reason="degraded-fabric",
                    )
                )
            return False
        duration = self.fabric.registry.reconfig_cycles(atom_type)
        self._in_flight = atom_type
        self._in_flight_container = container.index
        self._in_flight_failures = failures
        self._in_flight_spec = speculative
        self._busy_until = now + delay + duration
        self._loads_started += 1
        self._busy_cycles += delay + duration
        if self.tracer.enabled:
            self.tracer.emit(
                LoadStart(
                    cycle=now,
                    atom_type=atom_type,
                    container_index=container.index,
                    expected_completion=self._busy_until,
                    attempt=failures,
                    speculative=speculative,
                )
            )
        return True

    def _maybe_start(self, now: int) -> None:
        while self._in_flight is None and self._pending:
            if self._start_load(self._pending.popleft(), now):
                return
        # The bus is idle and nothing of the active plan is queued: fill
        # the window with speculative prefetch loads, if any.
        while self._in_flight is None and self._spec_pending:
            if self._start_load(
                self._spec_pending.popleft(), now, speculative=True
            ):
                return

    def next_completion(self) -> Optional[int]:
        """Cycle of the next load completion, or None when idle."""
        return self._busy_until if self._in_flight is not None else None

    def _clear_in_flight(self) -> None:
        self._in_flight = None
        self._in_flight_container = None
        self._in_flight_failures = 0
        self._in_flight_spec = False

    def _handle_fault(
        self, fault: LoadFault, container, finish: int
    ) -> None:
        """React to a failed load completion at cycle ``finish``."""
        atom_type = self._in_flight
        failures = self._in_flight_failures + 1
        self._loads_failed += 1
        if self.tracer.enabled:
            self.tracer.emit(
                LoadFailed(
                    cycle=finish,
                    atom_type=atom_type,
                    container_index=container.index,
                    fault=fault.name.lower(),
                    attempt=failures - 1,
                )
            )
        container.fail_load()
        if fault is LoadFault.PERMANENT:
            self.fabric.kill_container(container.index)
            if self.tracer.enabled:
                self.tracer.emit(
                    ContainerDead(cycle=finish, container_index=container.index)
                )
        speculative = self._in_flight_spec
        self._clear_in_flight()
        if speculative:
            # Speculative loads are never retried: the prediction may
            # already be stale, and retry backoff would hog the bus the
            # current plan might need.  Settled as a failed speculation.
            self._spec_failed.append(atom_type)
            self._loads_abandoned += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    LoadAbandoned(
                        cycle=finish,
                        atom_type=atom_type,
                        reason="speculative-no-retry",
                    )
                )
            self._maybe_start(finish)
            return
        if self.retry_policy.allows_retry(failures):
            # Backoff is modelled as extra in-flight time of the retry:
            # the port stays "busy" through the gap, keeping completion
            # times monotone and exactly accounted.
            backoff = self.retry_policy.delay(failures)
            if self._start_load(
                atom_type,
                finish,
                delay=backoff,
                failures=failures,
            ):
                self._loads_retried += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        LoadRetry(
                            cycle=finish,
                            atom_type=atom_type,
                            attempt=failures,
                            backoff=backoff,
                        )
                    )
                return
        else:
            if self.retry_policy.on_exhausted == "raise":
                raise TransientLoadError(
                    f"load of atom {atom_type!r} failed {failures} times "
                    f"at cycle {finish}; retry budget "
                    f"({self.retry_policy.max_retries}) exhausted"
                )
            self._loads_abandoned += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    LoadAbandoned(
                        cycle=finish,
                        atom_type=atom_type,
                        reason="retry-budget-exhausted",
                    )
                )
        self._maybe_start(finish)

    def advance_to(self, cycle: int) -> List[LoadCompletion]:
        """Process all completions up to and including ``cycle``.

        Completed loads immediately trigger the next pending load (the
        port never idles while work is queued).  Returns the successful
        completion events in time order; failed loads are retried or
        abandoned per the fault model and retry policy and never appear
        as events.
        """
        events: List[LoadCompletion] = []
        while self._in_flight is not None and self._busy_until <= cycle:
            finish = self._busy_until
            container = self.fabric.containers[self._in_flight_container]
            if container.atom_type != self._in_flight:  # pragma: no cover
                raise FabricError(
                    f"in-flight bookkeeping mismatch on AC"
                    f"{self._in_flight_container}"
                )
            fault = self.fault_model.check_load(
                self._in_flight, container.index, finish
            )
            if fault is not None:
                self._handle_fault(fault, container, finish)
                continue
            container.complete_load(finish)
            events.append(
                LoadCompletion(
                    cycle=finish,
                    atom_type=self._in_flight,
                    container_index=container.index,
                )
            )
            if self._in_flight_spec:
                self._spec_completed.append(self._in_flight)
            self._loads_completed += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    LoadCompleteEvent(
                        cycle=finish,
                        atom_type=self._in_flight,
                        container_index=container.index,
                    )
                )
            self._clear_in_flight()
            self._maybe_start(finish)
        return events

    def fail_in_flight(self, fault: LoadFault = LoadFault.TRANSIENT) -> None:
        """Manually inject a failure of the current in-flight load.

        Chaos-testing hook: the load fails *now* with the given fault
        class, regardless of the configured fault model.

        Raises
        ------
        TransientLoadError
            When no load is in flight.
        """
        if self._in_flight is None:
            raise TransientLoadError(
                "cannot inject a load failure: the port is idle"
            )
        container = self.fabric.containers[self._in_flight_container]
        self._handle_fault(fault, container, self._busy_until)

    def drain(self, max_steps: int = 100_000) -> List[LoadCompletion]:
        """Run the port until every queued load completed (test helper).

        ``max_steps`` bounds the number of port steps so that a fault
        schedule which keeps failing a retryable load cannot spin
        forever.

        Raises
        ------
        SimulationError
            When the port has not settled after ``max_steps`` steps.
        """
        events: List[LoadCompletion] = []
        steps = 0
        while self._in_flight is not None:
            steps += 1
            if steps > max_steps:
                raise SimulationError(
                    f"reconfiguration port failed to drain within "
                    f"{max_steps} steps: in-flight {self._in_flight!r} "
                    f"(attempt {self._in_flight_failures + 1}, busy until "
                    f"{self._busy_until}), {len(self._pending)} pending "
                    f"loads {list(self._pending)!r}"
                )
            events.extend(self.advance_to(self._busy_until))
        return events

    def __repr__(self) -> str:
        flight = self._in_flight or "-"
        return (
            f"ReconfigPort(in_flight={flight}, pending={len(self._pending)}, "
            f"busy_until={self._busy_until})"
        )
