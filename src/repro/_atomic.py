"""Shared durable-file primitives: atomic publish and torn-tail repair.

Every on-disk artifact whose readers must never observe a half-written
file — sweep-cache payloads, lint-cache entries, service snapshots —
goes through :func:`atomic_write_text`: write to a same-directory
temporary file, optionally ``fsync``, then ``os.replace`` onto the
destination.  POSIX rename atomicity guarantees readers see either the
old complete file or the new complete file, never a prefix.

Append-only journals cannot be replaced wholesale; their crash mode is
a *torn final line* (the writer died mid-``write``).  They share
:func:`trim_torn_tail` instead: truncate the file back to its last
newline so the intact prefix is all that remains before appending
resumes.

This module sits in the ``base`` lint layer (RL008) so every layer —
including ``lint`` itself — may import it.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text", "trim_torn_tail"]


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    *,
    fsync: bool = False,
    suffix: str = ".tmp",
) -> Path:
    """Publish ``text`` at ``path`` atomically; returns the path.

    The temporary file lives in ``path``'s directory (``os.replace``
    across filesystems is not atomic).  With ``fsync=True`` the data is
    forced to stable storage before the rename, so a power loss cannot
    leave the new name pointing at zero-length or stale blocks.  On any
    failure the temp file is unlinked best-effort and the original
    error propagates — the destination is never touched.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=".tmp-", suffix=suffix
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        # Best-effort cleanup of the temp file; the original error is
        # what matters and must propagate.
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return target


def trim_torn_tail(path: Union[str, Path]) -> int:
    """Truncate a line-oriented file back to its last complete line.

    A writer killed mid-line leaves a file that does not end in a
    newline; appending onto it would fuse the next record into the
    garbage.  Truncating to the byte after the last ``\\n`` keeps
    writer and reader agreeing on the intact prefix — a fully-torn
    first line means an empty file.  Returns the number of bytes
    dropped (0 when the file is absent, empty, or already clean).
    """
    target = Path(path)
    try:
        size = target.stat().st_size
    except OSError:
        return 0
    if size == 0:
        return 0
    with open(target, "rb+") as handle:
        handle.seek(-1, 2)
        if handle.read(1) == b"\n":
            return 0
        handle.seek(0)
        data = handle.read()
        keep = data.rfind(b"\n") + 1
        handle.truncate(keep)
        return len(data) - keep
