"""The package version, in a leaf module.

Kept out of ``repro/__init__.py`` so low-level modules (e.g. the sweep
cache's code-version salt in :mod:`repro.exec.cache`) can read the
version without importing the package root — importing the root from a
submodule the root itself re-exports would create an initialization
cycle that only holds together by import order.
"""

from __future__ import annotations

__all__ = ["__version__"]

__version__ = "1.0.0"
