"""Base-processor substrate.

The RISPP prototype extends a typical in-order CPU pipeline (DLX/MIPS and
Leon2/SPARC V8 variants existed) with the Atom Containers.  For the
run-time system only two properties of the base processor matter: the
cost of the synchronous-exception (trap) path that executes an SI on the
base ISA when its atoms are not yet loaded, and the non-SI instruction
stream between SI executions.  Both are modelled here.
"""

from __future__ import annotations

from .processor import BaseProcessor

__all__ = ["BaseProcessor"]
