"""Cycle-cost model of the base processor.

When an SI shall be executed but the required atoms are not yet loaded, a
synchronous exception (trap) is automatically triggered and the SI's
functionality runs on the base instruction set (Section 3).  The trap
adds a fixed entry/exit overhead on top of the software implementation's
latency; hardware-implemented SIs issue directly from the pipeline and
pay no overhead beyond their molecule latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.si import MoleculeImpl
from ..errors import CalibrationError

__all__ = ["BaseProcessor"]


@dataclass(frozen=True)
class BaseProcessor:
    """Base-ISA cost parameters.

    Attributes
    ----------
    name:
        Informational label of the modelled core.
    trap_overhead:
        Cycles for trap entry + exit around a software SI execution
        (pipeline flush, handler dispatch, return).
    hot_spot_entry_overhead:
        Cycles the Run-Time Manager spends at a hot-spot switch
        (forecast, selection, scheduling).  The prototype's HEF FSM runs
        concurrently with execution and is tiny (Table 3), so this is a
        small constant.
    """

    name: str = "Leon2-like"
    trap_overhead: int = 24
    hot_spot_entry_overhead: int = 200

    def __post_init__(self) -> None:
        if self.trap_overhead < 0:
            raise CalibrationError(
                f"trap overhead must be >= 0, got {self.trap_overhead}"
            )
        if self.hot_spot_entry_overhead < 0:
            raise CalibrationError(
                "hot-spot entry overhead must be >= 0, got "
                f"{self.hot_spot_entry_overhead}"
            )

    def si_execution_cycles(self, impl: MoleculeImpl) -> int:
        """Cycles for one SI execution with the given implementation.

        Software implementations pay the trap overhead on top of their
        base-ISA latency; hardware molecules execute as pipeline-coupled
        custom instructions.
        """
        if impl.is_software:
            return impl.latency + self.trap_overhead
        return impl.latency

    def effective_latency(self, latency: int, is_software: bool) -> int:
        """Same as :meth:`si_execution_cycles` on raw numbers (hot path)."""
        return latency + self.trap_overhead if is_software else latency

    def iteration_cycles(
        self,
        si_counts: Mapping[str, int],
        latencies: Mapping[str, int],
        software: Mapping[str, bool],
        overhead: int,
    ) -> int:
        """Cycles of one hot-spot iteration (e.g. one macroblock).

        ``si_counts`` gives the SI executions of the iteration,
        ``latencies``/``software`` the current implementation state, and
        ``overhead`` the non-SI instructions of the iteration.
        """
        total = overhead
        for si_name, count in si_counts.items():
            total += count * self.effective_latency(
                latencies[si_name], software[si_name]
            )
        return total
