"""Drivers that regenerate every experiment of the paper's Section 5.

Each ``run_*`` function describes its simulations as
:class:`~repro.exec.spec.SweepCell` grids and executes them through the
sweep engine (:mod:`repro.exec`) — so every figure/table benefits from
process-pool parallelism (``jobs``) and the content-addressed result
cache (``cache``): a repeated or resumed reproduction skips completed
cells entirely.  The full paper scale (140 CIF frames, AC counts 5-24,
four schedulers plus the Molen baseline) takes a few minutes cold; pass
an :class:`ExperimentScale` with fewer frames for quick runs — the
speedup *shapes* stabilise after a handful of frames.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..calibration import AC_COUNT_SWEEP, NUM_FRAMES
from ..core.molecule import Molecule
from ..core.schedulers import PAPER_SCHEDULERS, get_scheduler
from ..core.si import MoleculeImpl, SILibrary, SpecialInstruction
from ..exec.cache import ResultCache
from ..exec.runner import SweepReport, cache_from_env, default_jobs, run_sweep
from ..exec.spec import SweepCell, SweepSpec, WorkloadSpec
from ..exec.supervise import SupervisorPolicy, policy_from_env
from ..fabric.atom import AtomRegistry
from ..sim.results import SimulationResult
from ..sim.timeline import bin_executions, latency_steps
from ..workload.model import H264WorkloadModel
from ..workload.trace import Workload

__all__ = [
    "ExperimentScale",
    "Fig2Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "PrefetchComparisonResult",
    "run_figure2",
    "run_figure4",
    "run_figure7",
    "run_figure8",
    "run_prefetch_comparison",
    "fig7_spec",
    "fig7_payload",
    "render_fig7_artifact",
    "speedup_table",
    "default_scale",
]


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run should be.

    ``frames`` scales the workload; ``ac_counts`` the Figure 7 sweep.
    The paper scale is ``ExperimentScale(frames=140)``.
    """

    frames: int = NUM_FRAMES
    seed: int = 2008
    ac_counts: Tuple[int, ...] = AC_COUNT_SWEEP

    def workload(self) -> Workload:
        return H264WorkloadModel(
            num_frames=self.frames, seed=self.seed
        ).generate()


def default_scale() -> ExperimentScale:
    """Scale taken from the ``REPRO_FRAMES`` environment variable.

    Defaults to a 40-frame run (speedup shapes are stable there); set
    ``REPRO_FRAMES=140`` for the full paper scale.
    """
    frames = int(os.environ.get("REPRO_FRAMES", "40"))
    return ExperimentScale(frames=frames)


def _engine_args(
    jobs: Optional[int], cache: Optional[ResultCache]
) -> Tuple[int, Optional[ResultCache], Optional[SupervisorPolicy]]:
    """Resolve runner arguments, falling back to the environment
    (``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` / ``REPRO_TIMEOUT`` /
    ``REPRO_MAX_ATTEMPTS``).  A policy from the environment routes the
    figure sweeps through the fault-tolerant supervisor, so a single
    hung cell cannot stall a whole reproduction run."""
    return (
        default_jobs() if jobs is None else max(1, int(jobs)),
        cache if cache is not None else cache_from_env(),
        policy_from_env(),
    )


# ---------------------------------------------------------------------------
# Figure 2 — gradual upgrade vs no upgrade in the ME hot spot
# ---------------------------------------------------------------------------


@dataclass
class Fig2Result:
    """SI executions per 100 K cycles, with and without gradual upgrade."""

    window: int
    bin_starts: np.ndarray
    with_upgrade: np.ndarray     #: combined SAD+SATD executions per bin
    without_upgrade: np.ndarray
    total_executions: int
    upgrade_finish_cycle: int    #: last ME atom load with upgrades
    no_upgrade_finish_cycle: int
    with_total_cycles: int
    without_total_cycles: int

    @property
    def upgrade_speedup(self) -> float:
        return self.without_total_cycles / self.with_total_cycles


def run_figure2(
    num_acs: int = 10,
    scale: Optional[ExperimentScale] = None,
    window: int = 100_000,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Fig2Result:
    """Reproduce Figure 2: the ME hot spot with vs without SI upgrades.

    The with-upgrade system is RISPP with the HEF scheduler; the
    without-upgrade system is the Molen-like baseline (software until the
    full molecule is loaded).  Both start from a cold fabric and process
    the same motion-estimation workload (the first two ME invocations).
    """
    scale = scale or ExperimentScale(frames=2)
    me_only = WorkloadSpec(
        frames=scale.frames, seed=scale.seed,
        hot_spots=("ME",), max_traces=2,
    )
    cells = [
        SweepCell(
            system="RISPP", scheduler="HEF", num_acs=num_acs,
            workload=me_only, record_segments=True,
        ),
        SweepCell(
            system="Molen", num_acs=num_acs,
            workload=me_only, record_segments=True,
        ),
    ]
    jobs, cache, policy = _engine_args(jobs, cache)
    report = run_sweep(cells, jobs=jobs, cache=cache, policy=policy)
    with_result, without_result = report.results

    end = max(with_result.total_cycles, without_result.total_cycles)
    _, with_m, names_w = bin_executions(
        with_result.segments, window=window, end_cycle=end
    )
    starts, without_m, names_wo = bin_executions(
        without_result.segments, window=window, end_cycle=end
    )
    with_series = with_m.sum(axis=0)
    without_series = without_m.sum(axis=0)
    return Fig2Result(
        window=window,
        bin_starts=starts,
        with_upgrade=with_series,
        without_upgrade=without_series,
        total_executions=sum(with_result.si_executions.values()),
        upgrade_finish_cycle=_last_upgrade_cycle(with_result),
        no_upgrade_finish_cycle=_last_upgrade_cycle(without_result),
        with_total_cycles=with_result.total_cycles,
        without_total_cycles=without_result.total_cycles,
    )


def _last_upgrade_cycle(result: SimulationResult) -> int:
    if not result.latency_events:
        return 0
    return max(e.cycle for e in result.latency_events)


# ---------------------------------------------------------------------------
# Figure 4 — schedules and molecule availability on the toy example
# ---------------------------------------------------------------------------


@dataclass
class Fig4Result:
    """Fastest available molecule after each atom load, per schedule."""

    atom_names: Tuple[str, ...]
    schedules: Dict[str, Tuple[str, ...]]          #: name -> atom sequence
    availability: Dict[str, List[str]]             #: name -> fastest per load
    latencies: Dict[str, List[int]]                #: name -> latency per load


def build_fig4_library() -> Tuple[AtomRegistry, SILibrary, MoleculeImpl]:
    """The two-atom-type toy SI of Section 4 / Figure 4.

    One SI over atoms ``A1``/``A2`` with molecules ``m1 = (0, 2)``,
    ``m2 = (2, 2)`` and the selected ``m3 = (3, 3)``, plus the discussed
    ``m4 = (1, 3)`` that is *slower* than ``m2`` despite being
    incomparable in the lattice — the candidate the cleaning step of
    equation (4) has to evaluate against the current availability.
    """
    registry = AtomRegistry.uniform(["A1", "A2"])
    space = registry.space
    molecules = [
        MoleculeImpl("SI", "m1", space.molecule({"A2": 2}), 90),
        MoleculeImpl("SI", "m2", space.molecule({"A1": 2, "A2": 2}), 55),
        MoleculeImpl("SI", "m4", space.molecule({"A1": 1, "A2": 3}), 60),
        MoleculeImpl("SI", "m3", space.molecule({"A1": 3, "A2": 3}), 30),
    ]
    si = SpecialInstruction("SI", space, software_latency=500,
                            molecules=molecules)
    library = SILibrary(space, [si])
    return registry, library, si.molecule("m3")


def run_figure4() -> Fig4Result:
    """Reproduce Figure 4: a good (HEF) vs a naive atom schedule."""
    registry, library, selected = build_fig4_library()
    space = registry.space
    si = library.get("SI")
    selection = {"SI": selected}
    expected = {"SI": 1000.0}

    hef = get_scheduler("HEF").schedule(
        selection, {"SI": si}, space.zero(), expected
    )
    # The naive schedule of Figure 4 (dashed line): all A1 first.
    naive_sequence = ["A1", "A1", "A1", "A2", "A2", "A2"]

    schedules = {
        "HEF": hef.atom_sequence(),
        "naive": tuple(naive_sequence),
    }
    availability: Dict[str, List[str]] = {}
    latencies: Dict[str, List[int]] = {}
    for name, sequence in schedules.items():
        avail = space.zero()
        fastest: List[str] = []
        lats: List[int] = []
        for atom in sequence:
            counts = list(avail.counts)
            counts[space.index(atom)] += 1
            avail = Molecule(space, counts)
            impl = si.fastest_available(avail)
            fastest.append(impl.name)
            lats.append(impl.latency)
        availability[name] = fastest
        latencies[name] = lats
    return Fig4Result(
        atom_names=space.names,
        schedules=schedules,
        availability=availability,
        latencies=latencies,
    )


# ---------------------------------------------------------------------------
# Figure 7 / Table 2 — the scheduler sweep and speedups
# ---------------------------------------------------------------------------


@dataclass
class Fig7Result:
    """Execution times (Mcycles) per scheduler over the AC sweep."""

    ac_counts: Tuple[int, ...]
    mcycles: Dict[str, List[float]]   #: scheduler name -> series
    software_mcycles: float
    frames: int
    #: Execution accounting of the underlying sweep (per-cell wall
    #: times and cache hits), when the run came through the engine.
    report: Optional[SweepReport] = None

    def series(self, name: str) -> List[float]:
        return self.mcycles[name]


def fig7_spec(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = PAPER_SCHEDULERS,
    include_molen: bool = True,
    engine: str = "reference",
) -> SweepSpec:
    """The declarative grid behind Figure 7 / Table 2.

    ``engine`` picks the trace-replay engine per cell; the engines are
    bit-identical, so any choice regenerates the same figure (and hits
    the same result-cache entries).
    """
    scale = scale or default_scale()
    return SweepSpec(
        schedulers=tuple(schedulers),
        ac_counts=tuple(scale.ac_counts),
        workload=WorkloadSpec(frames=scale.frames, seed=scale.seed),
        include_molen=include_molen,
        include_software=True,
        engine=engine,
    )


def run_figure7(
    scale: Optional[ExperimentScale] = None,
    schedulers: Sequence[str] = PAPER_SCHEDULERS,
    include_molen: bool = True,
    progress: bool = False,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    engine: str = "reference",
) -> Fig7Result:
    """Reproduce Figure 7 (and the data underlying Table 2).

    Runs every scheduler (plus the Molen baseline) at every AC count of
    the sweep on the same workload, fanned out over ``jobs`` worker
    processes and served from ``cache`` where possible (both default to
    the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` environment).  ``engine``
    selects the bit-identical trace-replay engine per cell.
    """
    scale = scale or default_scale()
    spec = fig7_spec(scale, schedulers, include_molen, engine=engine)
    callback = None
    if progress:  # pragma: no cover - cosmetic
        def callback(outcome):
            origin = "cache" if outcome.cache_hit else (
                f"{outcome.wall_time:.2f}s"
            )
            print(f"  {outcome.label}: "
                  f"{outcome.result.total_mcycles:,.1f} Mcycles ({origin})")
    jobs, cache, policy = _engine_args(jobs, cache)
    report = run_sweep(
        spec, jobs=jobs, cache=cache, progress=callback, policy=policy
    )
    mcycles: Dict[str, List[float]] = {name: [] for name in schedulers}
    if include_molen:
        mcycles["Molen"] = []
    software_mcycles = 0.0
    for outcome in report:
        cell, result = outcome.cell, outcome.result
        if cell.system == "Software":
            software_mcycles = result.total_mcycles
        elif cell.system == "Molen":
            mcycles["Molen"].append(result.total_mcycles)
        else:
            mcycles[cell.scheduler].append(result.total_mcycles)
    return Fig7Result(
        ac_counts=tuple(scale.ac_counts),
        mcycles=mcycles,
        software_mcycles=software_mcycles,
        frames=scale.frames,
        report=report,
    )


def speedup_table(result: Fig7Result) -> Dict[str, List[float]]:
    """Table 2 from a Figure 7 sweep: the three speedup rows."""
    hef = result.mcycles["HEF"]
    asf = result.mcycles["ASF"]
    molen = result.mcycles["Molen"]
    return {
        "HEF vs ASF": [a / h for a, h in zip(asf, hef)],
        "ASF vs Molen": [m / a for m, a in zip(molen, asf)],
        "HEF vs Molen": [m / h for m, h in zip(molen, hef)],
    }


def fig7_payload(result: Fig7Result) -> Dict[str, object]:
    """``artifacts/full_sweep_results.json`` as a plain dict.

    Key order and value types are pinned: serialising this dict with
    :func:`render_fig7_artifact` regenerates the committed artifact
    byte-for-byte.  Both trace-replay engines produce the same bytes —
    the golden tests rely on it.
    """
    return {
        "ac_counts": list(result.ac_counts),
        "mcycles": {n: list(s) for n, s in result.mcycles.items()},
        "software": result.software_mcycles,
        "speedups": speedup_table(result),
    }


def render_fig7_artifact(result: Fig7Result) -> str:
    """The exact serialisation of ``artifacts/full_sweep_results.json``."""
    return json.dumps(fig7_payload(result), indent=1)


# ---------------------------------------------------------------------------
# Prefetch — overhead hidden by cross-hot-spot speculation vs plain HEF
# ---------------------------------------------------------------------------


@dataclass
class PrefetchComparisonResult:
    """PREFETCH vs HEF over an AC sweep (the Figure 7 axis).

    Per AC count the comparison reports the cycles the speculation hid
    (``hef_total - prefetch_total``) and, as the headline fraction, how
    much of HEF's *reconfiguration overhead* (its committed bus
    occupancy) that hiding amounts to.  The per-run never-worse
    invariant — PREFETCH is at most ``prefetch_wasted_bus_cycles``
    slower than HEF — is checked for every cell pair and surfaced as
    ``never_worse``.
    """

    ac_counts: Tuple[int, ...]
    workload_generator: str
    flip_rate: float
    confidence: float
    budget: int
    frames: int
    hef_mcycles: List[float]
    prefetch_mcycles: List[float]
    #: Per AC count: ``hef_total_cycles - prefetch_total_cycles``
    #: (negative means PREFETCH lost cycles — bounded by the wasted-bus
    #: account, never more).
    hidden_cycles: List[int]
    #: ``hidden_cycles`` over HEF's committed bus occupancy — the share
    #: of the reconfiguration overhead the speculation hid.
    hidden_fraction: List[float]
    issued: List[int]
    hits: List[int]
    wasted: List[int]
    wasted_bus_cycles: List[int]
    never_worse: bool
    report: Optional[SweepReport] = None

    def summary(self) -> str:
        """Per-AC-count one-liners plus the invariant verdict."""
        lines = [
            f"PREFETCH vs HEF ({self.workload_generator} workload, "
            f"{self.frames} frames, confidence {self.confidence:g}, "
            f"budget {self.budget})",
            f"{'ACs':>4s} {'HEF Mcyc':>10s} {'PF Mcyc':>10s} "
            f"{'hidden':>10s} {'of bus':>7s} {'issued':>7s} {'hits':>5s} "
            f"{'wasted':>7s}",
        ]
        for i, num_acs in enumerate(self.ac_counts):
            lines.append(
                f"{num_acs:>4d} {self.hef_mcycles[i]:>10.2f} "
                f"{self.prefetch_mcycles[i]:>10.2f} "
                f"{self.hidden_cycles[i]:>10d} "
                f"{self.hidden_fraction[i]:>7.1%} "
                f"{self.issued[i]:>7d} {self.hits[i]:>5d} "
                f"{self.wasted[i]:>7d}"
            )
        lines.append(
            "never-worse invariant: "
            + ("holds for every AC count" if self.never_worse else
               "VIOLATED")
        )
        return "\n".join(lines)


def run_prefetch_comparison(
    ac_counts: Sequence[int] = (4, 6, 10, 16),
    scale: Optional[ExperimentScale] = None,
    confidence: float = 0.6,
    budget: int = 4,
    workload_generator: str = "h264",
    flip_rate: float = 0.25,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> PrefetchComparisonResult:
    """PREFETCH vs HEF: how much reconfiguration overhead speculation hides.

    Runs both schedulers at every AC count on the same workload (the
    calibrated H.264 model, or the adversarial misprediction generator
    with ``workload_generator="adversarial"``) and reports the hidden
    cycles per AC count, as an absolute count and as a fraction of HEF's
    committed reconfiguration-bus occupancy.  Where the selection
    saturates the fabric, speculative loads find no evictable victim and
    settle as zero-cost drops — the hidden fraction is then exactly 0
    and PREFETCH is field-identical to HEF.
    """
    scale = scale or default_scale()
    workload = WorkloadSpec(
        frames=scale.frames,
        seed=scale.seed,
        generator=workload_generator,
        flip_rate=flip_rate,
    )
    cells: List[SweepCell] = []
    for num_acs in ac_counts:
        for scheduler in ("HEF", "PREFETCH"):
            cells.append(
                SweepCell(
                    system="RISPP",
                    scheduler=scheduler,
                    num_acs=num_acs,
                    workload=workload,
                    prefetch_confidence=confidence,
                    prefetch_budget=budget,
                )
            )
    jobs, cache, policy = _engine_args(jobs, cache)
    report = run_sweep(cells, jobs=jobs, cache=cache, policy=policy)
    hef_mcycles: List[float] = []
    prefetch_mcycles: List[float] = []
    hidden_cycles: List[int] = []
    hidden_fraction: List[float] = []
    issued: List[int] = []
    hits: List[int] = []
    wasted: List[int] = []
    wasted_bus: List[int] = []
    never_worse = True
    for i in range(0, len(report.outcomes), 2):
        hef = report.outcomes[i].result
        prefetch = report.outcomes[i + 1].result
        hidden = hef.total_cycles - prefetch.total_cycles
        hef_mcycles.append(hef.total_mcycles)
        prefetch_mcycles.append(prefetch.total_mcycles)
        hidden_cycles.append(hidden)
        hidden_fraction.append(
            hidden / hef.bus_busy_cycles if hef.bus_busy_cycles else 0.0
        )
        issued.append(prefetch.prefetch_issued)
        hits.append(prefetch.prefetch_hits)
        wasted.append(prefetch.prefetch_wasted)
        wasted_bus.append(prefetch.prefetch_wasted_bus_cycles)
        if (
            prefetch.total_cycles
            > hef.total_cycles + prefetch.prefetch_wasted_bus_cycles
        ):
            never_worse = False
    return PrefetchComparisonResult(
        ac_counts=tuple(ac_counts),
        workload_generator=workload_generator,
        flip_rate=flip_rate,
        confidence=confidence,
        budget=budget,
        frames=scale.frames,
        hef_mcycles=hef_mcycles,
        prefetch_mcycles=prefetch_mcycles,
        hidden_cycles=hidden_cycles,
        hidden_fraction=hidden_fraction,
        issued=issued,
        hits=hits,
        wasted=wasted,
        wasted_bus_cycles=wasted_bus,
        never_worse=never_worse,
        report=report,
    )


# ---------------------------------------------------------------------------
# Figure 8 — detailed HEF behaviour over the first two hot spots
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    """Latency steps and execution bins for SAD/SATD/MC/DCT at 10 ACs."""

    window: int
    bin_starts: np.ndarray
    executions: Dict[str, np.ndarray]
    latency_series: Dict[str, Tuple[np.ndarray, np.ndarray]]
    span: Tuple[int, int]    #: cycle range covering ME + EE of the frame


def run_figure8(
    num_acs: int = 10,
    frame_index: int = 1,
    scale: Optional[ExperimentScale] = None,
    window: int = 100_000,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Fig8Result:
    """Reproduce Figure 8: HEF detail for ME and EE of one frame."""
    scale = scale or ExperimentScale(frames=max(2, frame_index + 1))
    cell = SweepCell(
        system="RISPP", scheduler="HEF", num_acs=num_acs,
        workload=WorkloadSpec(frames=scale.frames, seed=scale.seed),
        record_segments=True,
    )
    jobs, cache, policy = _engine_args(jobs, cache)
    report = run_sweep([cell], jobs=jobs, cache=cache, policy=policy)
    result = report.results[0]
    spans = [
        s
        for s in result.segments
        if s.frame_index == frame_index and s.hot_spot in ("ME", "EE")
    ]
    t0 = min(s.t0 for s in spans)
    t1 = max(s.t1 for s in spans)
    si_names = ("SAD", "SATD", "MC", "DCT")
    starts, matrix, names = bin_executions(
        spans, window=window, si_names=si_names, end_cycle=t1
    )
    first_bin = int(t0 // window)
    executions = {
        name: matrix[names.index(name)][first_bin:] for name in si_names
    }
    latency_series = {}
    for name in si_names:
        cycles, lats = latency_steps(
            result.latency_events, name, end_cycle=t1
        )
        mask = (cycles >= t0 - window) & (cycles <= t1)
        latency_series[name] = (cycles[mask] - t0, lats[mask])
    return Fig8Result(
        window=window,
        bin_starts=starts[first_bin:] - first_bin * window,
        executions=executions,
        latency_series=latency_series,
        span=(t0, t1),
    )
