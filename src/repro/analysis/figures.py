"""Text renderings of the paper's figures (ASCII series)."""

from __future__ import annotations

from typing import Optional, Sequence


from .experiments import Fig2Result, Fig4Result, Fig8Result

__all__ = [
    "ascii_series",
    "ascii_plot_fig7",
    "format_figure2",
    "format_figure4",
    "format_figure8",
]


def ascii_series(
    values: Sequence[float],
    width: int = 40,
    max_value: Optional[float] = None,
) -> list:
    """Render a series as horizontal ASCII bars (one string per value)."""
    values = list(values)
    peak = max_value if max_value is not None else max(values or [1.0])
    peak = peak or 1.0
    return ["#" * int(round(width * v / peak)) for v in values]


def format_figure2(result: Fig2Result, bar_width: int = 40) -> str:
    """Figure 2: ME SI executions per 100 K cycles, with/without upgrade."""
    peak = float(
        max(result.with_upgrade.max(), result.without_upgrade.max(), 1.0)
    )
    with_bars = ascii_series(result.with_upgrade, bar_width, peak)
    without_bars = ascii_series(result.without_upgrade, bar_width, peak)
    lines = [
        "Figure 2: SI executions per 100K cycles in the ME hot spot",
        f"({result.total_executions:,} SI executions; upgrade reaches the "
        f"final molecules at {result.upgrade_finish_cycle/1e3:,.0f}K cycles,"
        f" no-upgrade at {result.no_upgrade_finish_cycle/1e3:,.0f}K)",
        f"{'t[K]':>7s} {'with upgrade':<{bar_width}s}  "
        f"{'without upgrade':<{bar_width}s}",
        "-" * (9 + 2 * bar_width),
    ]
    for start, wu, wo in zip(result.bin_starts, with_bars, without_bars):
        lines.append(f"{start // 1000:>7d} {wu:<{bar_width}s}  {wo}")
    lines.append(
        f"with upgrade finishes in {result.with_total_cycles/1e6:.2f}M "
        f"cycles vs {result.without_total_cycles/1e6:.2f}M without "
        f"({result.upgrade_speedup:.2f}x)"
    )
    return "\n".join(lines)


def format_figure4(result: Fig4Result) -> str:
    """Figure 4: fastest available molecule after each atom load."""
    lines = [
        "Figure 4: Atom schedules and resulting molecule availability",
        f"{'# loaded atoms':>15s}"
        + "".join(f"{name:>14s}" for name in result.schedules),
        "-" * (15 + 14 * len(result.schedules)),
    ]
    length = max(len(seq) for seq in result.schedules.values())
    for k in range(length):
        row = f"{k + 1:>15d}"
        for name in result.schedules:
            fastest = result.availability[name][k]
            latency = result.latencies[name][k]
            label = f"{fastest}({latency})"
            row += f"{label:>14s}"
        lines.append(row)
    for name, seq in result.schedules.items():
        lines.append(f"{name} loads: {' -> '.join(seq)}")
    return "\n".join(lines)


def format_figure8(result: Fig8Result, bar_width: int = 24) -> str:
    """Figure 8: HEF latencies (log steps) and execution rates."""
    lines = [
        "Figure 8: HEF detail over ME and EE "
        f"(span {result.span[0]/1e3:,.0f}K..{result.span[1]/1e3:,.0f}K "
        "cycles)",
        "",
        "Latency step-downs (cycle offset -> effective latency):",
    ]
    for name, (cycles, lats) in result.latency_series.items():
        steps = ", ".join(
            f"{c/1e3:,.0f}K:{lat}" for c, lat in zip(cycles, lats)
        )
        lines.append(f"  {name:<6s} {steps}")
    lines.append("")
    lines.append("Executions per 100K cycles:")
    names = list(result.executions)
    header = f"{'t[K]':>7s}" + "".join(f"{n:>10s}" for n in names)
    lines.append(header)
    num_bins = len(next(iter(result.executions.values())))
    for i in range(num_bins):
        row = f"{int(result.bin_starts[i]) // 1000:>7d}"
        for name in names:
            row += f"{result.executions[name][i]:>10.0f}"
        lines.append(row)
    return "\n".join(lines)


def ascii_plot_fig7(result, height: int = 16) -> str:
    """Figure 7 as an ASCII line chart (execution time vs AC count).

    Each scheduler gets a marker; rows are Mcycles (top = slowest),
    columns the AC counts of the sweep.
    """
    markers = {"ASF": "a", "FSFR": "f", "SJF": "s", "HEF": "H",
               "Molen": "M"}
    series = {name: values for name, values in result.mcycles.items()}
    lo = min(min(v) for v in series.values())
    hi = max(max(v) for v in series.values())
    span = max(hi - lo, 1e-9)
    width = len(result.ac_counts)
    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        marker = markers.get(name, name[0])
        for col, value in enumerate(values):
            row = int(round((hi - value) / span * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = "*" if cell not in (" ", marker) else marker
    lines = [
        f"Figure 7 (ASCII): execution time, {result.frames} frames "
        f"(top {hi:,.0f} M, bottom {lo:,.0f} M)"
    ]
    for row_index, row in enumerate(grid):
        label = ""
        if row_index == 0:
            label = f"{hi:8,.0f}M "
        elif row_index == height - 1:
            label = f"{lo:8,.0f}M "
        else:
            label = " " * 10
        lines.append(label + "|" + " ".join(row))
    axis = " " * 10 + "+" + "-" * (2 * width - 1)
    lines.append(axis)
    lines.append(
        " " * 11
        + " ".join(f"{n % 10}" for n in result.ac_counts)
        + "   (#ACs, last digit)"
    )
    legend = ", ".join(f"{m}={n}" for n, m in markers.items()
                       if n in series)
    lines.append(" " * 11 + legend + "  (*: overlap)")
    return "\n".join(lines)
