"""Experiment drivers and report formatting.

One function per table/figure of the paper.  The ``experiments`` module
runs the simulations and returns structured results; ``tables`` and
``figures`` render them as text (the benchmarks print these, and
EXPERIMENTS.md records them against the paper's numbers).
"""

from __future__ import annotations

from .experiments import (
    ExperimentScale,
    Fig2Result,
    Fig4Result,
    Fig7Result,
    Fig8Result,
    PrefetchComparisonResult,
    build_fig4_library,
    fig7_payload,
    run_figure2,
    run_figure4,
    run_figure7,
    run_figure8,
    run_prefetch_comparison,
    speedup_table,
)
from .tables import (
    format_table1,
    format_table2,
    format_table3,
    format_fig7_table,
)
from .figures import (
    format_figure2,
    format_figure4,
    format_figure8,
    ascii_series,
    ascii_plot_fig7,
)

__all__ = [
    "ExperimentScale",
    "Fig2Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "PrefetchComparisonResult",
    "run_figure2",
    "run_figure4",
    "run_figure7",
    "run_figure8",
    "run_prefetch_comparison",
    "speedup_table",
    "build_fig4_library",
    "fig7_payload",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_fig7_table",
    "format_figure2",
    "format_figure4",
    "format_figure8",
    "ascii_series",
    "ascii_plot_fig7",
]
