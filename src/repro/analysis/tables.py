"""Text renderings of the paper's tables."""

from __future__ import annotations

from typing import Optional, Sequence

from ..calibration import (
    PAPER_ASF_VS_MOLEN,
    PAPER_HEF_VS_ASF,
    PAPER_HEF_VS_MOLEN,
)
from ..core.si import SILibrary
from ..h264.silibrary import HOT_SPOT_SIS, paper_si_label
from ..hw.area import HardwareCharacteristics, table3 as _hw_table3
from .experiments import Fig7Result, speedup_table

__all__ = [
    "format_table1",
    "format_table2",
    "format_table3",
    "format_fig7_table",
]


def format_table1(library: SILibrary) -> str:
    """Table 1: implemented SIs with atom-type and molecule counts."""
    hot_spot_of = {
        si: hs for hs, sis in HOT_SPOT_SIS.items() for si in sis
    }
    lines = [
        "Table 1: Implemented SIs of H.264",
        f"{'Hot spot':<10s} {'Special Instruction':<20s} "
        f"{'# Atom-types':>12s} {'# Molecules':>12s}",
        "-" * 58,
    ]
    for name, num_types, num_molecules in library.inventory():
        lines.append(
            f"{hot_spot_of.get(name, '-'):<10s} "
            f"{paper_si_label(name):<20s} {num_types:>12d} "
            f"{num_molecules:>12d}"
        )
    return "\n".join(lines)


def _speedup_row(label: str, values: Sequence[float]) -> str:
    return f"{label:<14s}" + "".join(f"{v:6.2f}" for v in values)


def format_table2(
    result: Fig7Result, include_paper: bool = True
) -> str:
    """Table 2: HEF/ASF/Molen speedups per AC count, next to the paper's."""
    table = speedup_table(result)
    lines = [
        f"Table 2: Speedups over the AC sweep ({result.frames} frames)",
        f"{'#ACs':<14s}" + "".join(f"{n:6d}" for n in result.ac_counts),
        "-" * (14 + 6 * len(result.ac_counts)),
    ]
    paper_rows = {
        "HEF vs ASF": PAPER_HEF_VS_ASF,
        "ASF vs Molen": PAPER_ASF_VS_MOLEN,
        "HEF vs Molen": PAPER_HEF_VS_MOLEN,
    }
    for label, values in table.items():
        lines.append(_speedup_row(label, values))
        if include_paper and len(result.ac_counts) == len(
            paper_rows[label]
        ):
            lines.append(_speedup_row("  (paper)", paper_rows[label]))
    avg = sum(table["HEF vs Molen"]) / len(table["HEF vs Molen"])
    lines.append(
        f"HEF vs Molen: max {max(table['HEF vs Molen']):.2f}x, "
        f"avg {avg:.2f}x (paper: max 2.38x, avg 1.71x)"
    )
    return "\n".join(lines)


def format_fig7_table(result: Fig7Result) -> str:
    """Figure 7 as a table: execution time (Mcycles) per scheduler."""
    names = list(result.mcycles)
    lines = [
        f"Figure 7: Execution time [Mcycles] encoding {result.frames} "
        f"frames (software: {result.software_mcycles:,.0f} M)",
        f"{'#ACs':>5s}" + "".join(f"{n:>10s}" for n in names),
        "-" * (5 + 10 * len(names)),
    ]
    for i, num_acs in enumerate(result.ac_counts):
        lines.append(
            f"{num_acs:>5d}"
            + "".join(f"{result.mcycles[n][i]:10.1f}" for n in names)
        )
    return "\n".join(lines)


def _hw_row(label: str, ours, atom) -> str:
    return f"{label:<22s}{ours:>16,}{atom:>12,}"


def format_table3(
    characteristics: Optional[HardwareCharacteristics] = None,
) -> str:
    """Table 3: hardware implementation results of the HEF scheduler."""
    hef, atom = _hw_table3()
    if characteristics is not None:
        hef = characteristics
    lines = [
        "Table 3: Hardware implementation results",
        f"{'Characteristic':<22s}{'HEF scheduler':>16s}{'Avg. atom':>12s}",
        "-" * 50,
        _hw_row("# Slices", hef.slices, atom.slices),
        _hw_row("# LUTs", hef.luts, atom.luts),
        _hw_row("# FFs", hef.ffs, atom.ffs),
        _hw_row("# MULT18X18", hef.mult18x18, atom.mult18x18),
        _hw_row("Gate equivalents", hef.gate_equivalents,
                atom.gate_equivalents),
        f"{'Clock delay [ns]':<22s}{hef.clock_delay_ns:>16.3f}"
        f"{atom.clock_delay_ns:>12.3f}",
        f"(HEF uses {hef.slice_ratio_to(atom):.2f}x the slices of the "
        f"average atom and fits one 1024-slice AC: {hef.fits_one_ac()})",
    ]
    return "\n".join(lines)
