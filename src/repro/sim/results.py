"""Result structures produced by the system simulators.

Results round-trip losslessly through plain-JSON dictionaries
(:meth:`SimulationResult.to_json_dict` /
:meth:`SimulationResult.from_json_dict`): the sweep-execution engine
(:mod:`repro.exec`) ships them across process boundaries and stores them
as content-addressed cache artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = ["Segment", "LatencyEvent", "SimulationResult"]


@dataclass(frozen=True)
class Segment:
    """A time span during which all SI latencies were constant.

    Between two reconfiguration completions nothing changes for the
    executing hot spot, so the simulators advance analytically and record
    one segment per span.  ``executions[i]`` counts the executions of
    ``si_names[i]`` inside the span; Figure 2/8 style per-100K-cycle
    series are derived from these spans by
    :func:`repro.sim.timeline.bin_executions`.
    """

    t0: int
    t1: int
    frame_index: int
    hot_spot: str
    si_names: Tuple[str, ...]
    executions: Tuple[int, ...]
    latencies: Tuple[int, ...]
    #: The span ran in degraded mode: the fabric had dead containers or
    #: the reconfiguration port was re-trying a failed load.
    degraded: bool = False

    @property
    def duration(self) -> int:
        return self.t1 - self.t0

    def executions_of(self, si_name: str) -> int:
        return self.executions[self.si_names.index(si_name)]

    def latency_of(self, si_name: str) -> int:
        return self.latencies[self.si_names.index(si_name)]

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (exact integer round trip)."""
        return {
            "t0": int(self.t0),
            "t1": int(self.t1),
            "frame_index": int(self.frame_index),
            "hot_spot": self.hot_spot,
            "si_names": list(self.si_names),
            "executions": [int(e) for e in self.executions],
            "latencies": [int(lat) for lat in self.latencies],
            "degraded": bool(self.degraded),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "Segment":
        return cls(
            t0=int(data["t0"]),
            t1=int(data["t1"]),
            frame_index=int(data["frame_index"]),
            hot_spot=str(data["hot_spot"]),
            si_names=tuple(data["si_names"]),
            executions=tuple(int(e) for e in data["executions"]),
            latencies=tuple(int(lat) for lat in data["latencies"]),
            degraded=bool(data.get("degraded", False)),
        )


@dataclass(frozen=True)
class LatencyEvent:
    """One change of an SI's effective latency (an upgrade landing).

    ``latency`` includes the trap overhead while the SI executes in
    software, so the Figure 8 latency lines show the true per-execution
    cost the pipeline observes.
    """

    cycle: int
    si_name: str
    latency: int

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "cycle": int(self.cycle),
            "si_name": self.si_name,
            "latency": int(self.latency),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "LatencyEvent":
        return cls(
            cycle=int(data["cycle"]),
            si_name=str(data["si_name"]),
            latency=int(data["latency"]),
        )


@dataclass
class SimulationResult:
    """Everything one simulator run produced.

    Cycle totals are always present; ``segments`` and ``latency_events``
    only when the run was started with ``record_segments=True``.
    """

    system: str
    scheduler_name: str
    num_acs: int
    workload_name: str
    total_cycles: int
    hot_spot_cycles: Dict[str, int]
    per_frame_cycles: List[int]
    si_executions: Dict[str, int]
    loads_started: int = 0
    loads_completed: int = 0
    evictions: int = 0
    #: Fault-injection statistics (all zero on a perfect fabric).
    loads_failed: int = 0
    loads_retried: int = 0
    loads_abandoned: int = 0
    dead_containers: int = 0
    degraded_cycles: int = 0
    #: Total committed reconfiguration-bus occupancy (cycles the port
    #: spent — or is committed to spend — writing bitstreams, retry
    #: backoff included).  The denominator of "overhead hidden".
    bus_busy_cycles: int = 0
    #: Cross-hot-spot prefetch accounting (all zero unless the PREFETCH
    #: scheduler speculated).  Invariant per run:
    #: ``prefetch_issued == prefetch_hits + prefetch_wasted``.
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0
    #: Bus cycles spent on speculative loads that did not become hits.
    prefetch_wasted_bus_cycles: int = 0
    segments: Optional[List[Segment]] = None
    latency_events: Optional[List[LatencyEvent]] = None

    @property
    def total_mcycles(self) -> float:
        """Total execution time in millions of cycles (Figure 7's unit)."""
        return self.total_cycles / 1e6

    @property
    def had_faults(self) -> bool:
        """Whether any fault was injected during the run."""
        return bool(self.loads_failed or self.dead_containers)

    @property
    def degraded_fraction(self) -> float:
        """Share of the run spent executing in degraded mode."""
        if not self.total_cycles:
            return 0.0
        return min(1.0, self.degraded_cycles / self.total_cycles)

    def speedup_over(self, other: "SimulationResult") -> float:
        """``other.total_cycles / self.total_cycles`` — how much faster
        this run is than ``other`` (>1 means faster)."""
        return other.total_cycles / self.total_cycles

    def executions_per_window(
        self, si_name: str, window: int = 100_000
    ) -> np.ndarray:
        """Executions of one SI per ``window``-cycle bin (Figure 2/8 bars).

        Requires the run to have recorded segments.
        """
        from .timeline import bin_executions  # local import avoids a cycle

        if self.segments is None:
            raise ValueError(
                "this run did not record segments; re-run with "
                "record_segments=True"
            )
        starts, matrix, names = bin_executions(self.segments, window=window)
        return matrix[names.index(si_name)]

    def summary(self) -> str:
        """One-line human-readable result description."""
        text = (
            f"{self.system}/{self.scheduler_name} @ {self.num_acs} ACs: "
            f"{self.total_mcycles:,.1f} Mcycles, "
            f"{self.loads_completed} atom loads, {self.evictions} evictions"
        )
        if self.had_faults:
            text += (
                f", {self.loads_failed} loads failed "
                f"({self.loads_retried} retried, "
                f"{self.loads_abandoned} abandoned), "
                f"{self.dead_containers} dead ACs, "
                f"{self.degraded_fraction:.1%} degraded"
            )
        return text

    def __repr__(self) -> str:
        return f"SimulationResult({self.summary()})"

    # -- serialization -----------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """Lossless plain-JSON representation of the whole result.

        Every cycle count is an exact Python integer, so serializing and
        parsing back yields a bit-identical result — the property the
        sweep cache and the parallel runner rely on.
        """
        data: Dict[str, Any] = {
            "system": self.system,
            "scheduler_name": self.scheduler_name,
            "num_acs": int(self.num_acs),
            "workload_name": self.workload_name,
            "total_cycles": int(self.total_cycles),
            "hot_spot_cycles": {
                k: int(v) for k, v in self.hot_spot_cycles.items()
            },
            "per_frame_cycles": [int(c) for c in self.per_frame_cycles],
            "si_executions": {
                k: int(v) for k, v in self.si_executions.items()
            },
            "loads_started": int(self.loads_started),
            "loads_completed": int(self.loads_completed),
            "evictions": int(self.evictions),
            "loads_failed": int(self.loads_failed),
            "loads_retried": int(self.loads_retried),
            "loads_abandoned": int(self.loads_abandoned),
            "dead_containers": int(self.dead_containers),
            "degraded_cycles": int(self.degraded_cycles),
            "bus_busy_cycles": int(self.bus_busy_cycles),
            "prefetch_issued": int(self.prefetch_issued),
            "prefetch_hits": int(self.prefetch_hits),
            "prefetch_wasted": int(self.prefetch_wasted),
            "prefetch_wasted_bus_cycles": int(
                self.prefetch_wasted_bus_cycles
            ),
            "segments": None,
            "latency_events": None,
        }
        if self.segments is not None:
            data["segments"] = [s.to_json_dict() for s in self.segments]
        if self.latency_events is not None:
            data["latency_events"] = [
                e.to_json_dict() for e in self.latency_events
            ]
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        segments = data.get("segments")
        latency_events = data.get("latency_events")
        return cls(
            system=str(data["system"]),
            scheduler_name=str(data["scheduler_name"]),
            num_acs=int(data["num_acs"]),
            workload_name=str(data["workload_name"]),
            total_cycles=int(data["total_cycles"]),
            hot_spot_cycles={
                str(k): int(v)
                for k, v in data["hot_spot_cycles"].items()
            },
            per_frame_cycles=[int(c) for c in data["per_frame_cycles"]],
            si_executions={
                str(k): int(v) for k, v in data["si_executions"].items()
            },
            loads_started=int(data.get("loads_started", 0)),
            loads_completed=int(data.get("loads_completed", 0)),
            evictions=int(data.get("evictions", 0)),
            loads_failed=int(data.get("loads_failed", 0)),
            loads_retried=int(data.get("loads_retried", 0)),
            loads_abandoned=int(data.get("loads_abandoned", 0)),
            dead_containers=int(data.get("dead_containers", 0)),
            degraded_cycles=int(data.get("degraded_cycles", 0)),
            bus_busy_cycles=int(data.get("bus_busy_cycles", 0)),
            prefetch_issued=int(data.get("prefetch_issued", 0)),
            prefetch_hits=int(data.get("prefetch_hits", 0)),
            prefetch_wasted=int(data.get("prefetch_wasted", 0)),
            prefetch_wasted_bus_cycles=int(
                data.get("prefetch_wasted_bus_cycles", 0)
            ),
            segments=(
                None
                if segments is None
                else [Segment.from_json_dict(s) for s in segments]
            ),
            latency_events=(
                None
                if latency_events is None
                else [LatencyEvent.from_json_dict(e) for e in latency_events]
            ),
        )
