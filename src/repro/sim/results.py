"""Result structures produced by the system simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Segment", "LatencyEvent", "SimulationResult"]


@dataclass(frozen=True)
class Segment:
    """A time span during which all SI latencies were constant.

    Between two reconfiguration completions nothing changes for the
    executing hot spot, so the simulators advance analytically and record
    one segment per span.  ``executions[i]`` counts the executions of
    ``si_names[i]`` inside the span; Figure 2/8 style per-100K-cycle
    series are derived from these spans by
    :func:`repro.sim.timeline.bin_executions`.
    """

    t0: int
    t1: int
    frame_index: int
    hot_spot: str
    si_names: Tuple[str, ...]
    executions: Tuple[int, ...]
    latencies: Tuple[int, ...]

    @property
    def duration(self) -> int:
        return self.t1 - self.t0

    def executions_of(self, si_name: str) -> int:
        return self.executions[self.si_names.index(si_name)]

    def latency_of(self, si_name: str) -> int:
        return self.latencies[self.si_names.index(si_name)]


@dataclass(frozen=True)
class LatencyEvent:
    """One change of an SI's effective latency (an upgrade landing).

    ``latency`` includes the trap overhead while the SI executes in
    software, so the Figure 8 latency lines show the true per-execution
    cost the pipeline observes.
    """

    cycle: int
    si_name: str
    latency: int


@dataclass
class SimulationResult:
    """Everything one simulator run produced.

    Cycle totals are always present; ``segments`` and ``latency_events``
    only when the run was started with ``record_segments=True``.
    """

    system: str
    scheduler_name: str
    num_acs: int
    workload_name: str
    total_cycles: int
    hot_spot_cycles: Dict[str, int]
    per_frame_cycles: List[int]
    si_executions: Dict[str, int]
    loads_started: int = 0
    loads_completed: int = 0
    evictions: int = 0
    segments: Optional[List[Segment]] = None
    latency_events: Optional[List[LatencyEvent]] = None

    @property
    def total_mcycles(self) -> float:
        """Total execution time in millions of cycles (Figure 7's unit)."""
        return self.total_cycles / 1e6

    def speedup_over(self, other: "SimulationResult") -> float:
        """``other.total_cycles / self.total_cycles`` — how much faster
        this run is than ``other`` (>1 means faster)."""
        return other.total_cycles / self.total_cycles

    def executions_per_window(
        self, si_name: str, window: int = 100_000
    ) -> np.ndarray:
        """Executions of one SI per ``window``-cycle bin (Figure 2/8 bars).

        Requires the run to have recorded segments.
        """
        from .timeline import bin_executions  # local import avoids a cycle

        if self.segments is None:
            raise ValueError(
                "this run did not record segments; re-run with "
                "record_segments=True"
            )
        starts, matrix, names = bin_executions(self.segments, window=window)
        return matrix[names.index(si_name)]

    def summary(self) -> str:
        """One-line human-readable result description."""
        return (
            f"{self.system}/{self.scheduler_name} @ {self.num_acs} ACs: "
            f"{self.total_mcycles:,.1f} Mcycles, "
            f"{self.loads_completed} atom loads, {self.evictions} evictions"
        )

    def __repr__(self) -> str:
        return f"SimulationResult({self.summary()})"
