"""Timeline post-processing: per-window execution series and latency steps.

The paper's Figure 2 and Figure 8 plot SI executions per 100 K cycles
(bars) and SI latencies over time (step lines).  The simulators record
piecewise-constant :class:`~repro.sim.results.Segment` spans; this module
distributes each span's executions uniformly over its duration and bins
them into fixed windows, and extracts the latency step functions from
the recorded :class:`~repro.sim.results.LatencyEvent` stream.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from .results import LatencyEvent, Segment

__all__ = ["bin_executions", "latency_steps"]


def bin_executions(
    segments: Sequence[Segment],
    window: int = 100_000,
    si_names: Optional[Sequence[str]] = None,
    end_cycle: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Bin segment executions into fixed windows.

    Each segment's executions are spread uniformly over ``[t0, t1)`` and
    accumulated into ``window``-cycle bins.

    Parameters
    ----------
    segments:
        Recorded execution segments (any order; they must not overlap).
    window:
        Bin width in cycles (the paper uses 100 K).
    si_names:
        Restrict/order the output rows; defaults to every SI appearing
        in the segments, in first-appearance order.
    end_cycle:
        Last cycle to cover; defaults to the max segment end.

    Returns
    -------
    ``(bin_starts, matrix, names)`` where ``matrix[i, j]`` counts the
    executions of ``names[i]`` inside
    ``[bin_starts[j], bin_starts[j] + window)``.
    """
    if window <= 0:
        raise SimulationError(f"window must be positive, got {window}")
    if si_names is None:
        seen: List[str] = []
        for segment in segments:
            for name in segment.si_names:
                if name not in seen:
                    seen.append(name)
        si_names = seen
    names = list(si_names)
    index = {name: i for i, name in enumerate(names)}
    if end_cycle is None:
        end_cycle = max((s.t1 for s in segments), default=window)
    num_bins = max(1, int(np.ceil(end_cycle / window)))
    matrix = np.zeros((len(names), num_bins), dtype=np.float64)
    for segment in segments:
        duration = segment.duration
        if duration <= 0:
            continue
        first_bin = segment.t0 // window
        last_bin = min((segment.t1 - 1) // window, num_bins - 1)
        for si_name, executions in zip(segment.si_names, segment.executions):
            if executions == 0 or si_name not in index:
                continue
            row = index[si_name]
            rate = executions / duration
            for bin_idx in range(first_bin, last_bin + 1):
                bin_start = bin_idx * window
                bin_end = bin_start + window
                overlap = min(segment.t1, bin_end) - max(segment.t0, bin_start)
                matrix[row, bin_idx] += rate * overlap
    bin_starts = np.arange(num_bins, dtype=np.int64) * window
    return bin_starts, matrix, names


def latency_steps(
    events: Iterable[LatencyEvent],
    si_name: str,
    end_cycle: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract one SI's latency step function from the event stream.

    Returns ``(cycles, latencies)`` suitable for step plotting: the SI's
    effective latency changed to ``latencies[i]`` at ``cycles[i]``.  When
    ``end_cycle`` is given, a final point repeating the last latency is
    appended so the step line spans the full run.
    """
    cycles: List[int] = []
    latencies: List[int] = []
    for event in events:
        if event.si_name != si_name:
            continue
        cycles.append(event.cycle)
        latencies.append(event.latency)
    if end_cycle is not None and cycles and cycles[-1] < end_cycle:
        cycles.append(end_cycle)
        latencies.append(latencies[-1])
    return np.asarray(cycles, dtype=np.int64), np.asarray(
        latencies, dtype=np.int64
    )
