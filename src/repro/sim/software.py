"""Pure-software baseline — the zero-AC configuration.

With no Atom Containers every SI executes via the synchronous-exception
path on the base instruction set.  The paper reports 7,403 M cycles for
the 140-frame benchmark in this configuration; the calibrated workload
model reproduces that total.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.si import SILibrary
from ..isa.processor import BaseProcessor
from ..workload.trace import Workload
from .results import SimulationResult

__all__ = ["simulate_software"]


def simulate_software(
    library: SILibrary,
    workload: Workload,
    processor: Optional[BaseProcessor] = None,
) -> SimulationResult:
    """Account a pure-software (0 ACs) run of ``workload``."""
    proc = processor if processor is not None else BaseProcessor()
    total = 0
    hot_spot_cycles: Dict[str, int] = {}
    frame_cycles: Dict[int, int] = {}
    si_totals: Dict[str, int] = {}
    for trace in workload:
        cycles = proc.hot_spot_entry_overhead
        cycles += trace.iterations * trace.overhead_per_iteration
        for si_name, count in trace.totals().items():
            latency = library.get(si_name).software_latency
            cycles += count * (latency + proc.trap_overhead)
            si_totals[si_name] = si_totals.get(si_name, 0) + count
        total += cycles
        hot_spot_cycles[trace.hot_spot] = (
            hot_spot_cycles.get(trace.hot_spot, 0) + cycles
        )
        frame_cycles[trace.frame_index] = (
            frame_cycles.get(trace.frame_index, 0) + cycles
        )
    return SimulationResult(
        system="Software",
        scheduler_name="Software",
        num_acs=0,
        workload_name=workload.name,
        total_cycles=total,
        hot_spot_cycles=hot_spot_cycles,
        per_frame_cycles=[frame_cycles[idx] for idx in sorted(frame_cycles)],
        si_executions=si_totals,
    )
