"""Molen/OneChip-like baseline — one fixed implementation per SI.

State-of-the-art reconfigurable systems like Molen [19] and OneChip [21]
provide a *single* implementation per Special Instruction and cannot
upgrade it during run time.  The paper simulates their behaviour for a
fair comparison: the same hardware accelerators (i.e. the same selected
molecules, chosen with the same expectations and AC budget) are loaded
through the same reconfiguration port — but an SI keeps executing in
software until its full implementation finished loading, and no
intermediate molecule is ever used.

The load order is the natural Molen strategy: one SI after the other,
most important first (the reconfiguration instructions are issued
explicitly in program order), each SI's atoms back to back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.molecule import Molecule
from ..core.monitor import ExecutionMonitor
from ..core.scoring import select_molecules_fast
from ..core.selection import MoleculeSelection, select_molecules
from ..core.si import MoleculeImpl, SILibrary
from ..fabric.atom import AtomRegistry
from ..isa.processor import BaseProcessor
from ..obs.events import SchedulerDecision
from ..workload.trace import HotSpotTrace
from .engine import SystemSimulator

__all__ = ["MolenSimulator"]


@dataclass
class _MolenContext:
    """Per-hot-spot plan of the baseline."""

    selection: MoleculeSelection
    expected: Dict[str, float]


class MolenSimulator(SystemSimulator):
    """Behavioural model of a Molen-like reconfigurable system."""

    system_name = "Molen"

    def __init__(
        self,
        library: SILibrary,
        registry: AtomRegistry,
        num_acs: int,
        processor: Optional[BaseProcessor] = None,
        monitor: Optional[ExecutionMonitor] = None,
        record_segments: bool = False,
        eviction_policy=None,
        fault_model=None,
        retry_policy=None,
        tracer=None,
        metrics=None,
        engine="reference",
    ):
        super().__init__(
            library,
            registry,
            num_acs,
            processor=processor,
            record_segments=record_segments,
            eviction_policy=eviction_policy,
            fault_model=fault_model,
            retry_policy=retry_policy,
            tracer=tracer,
            metrics=metrics,
            engine=engine,
        )
        self.monitor = monitor if monitor is not None else ExecutionMonitor()
        # Static-array memo for the fast selection path; keyed by the
        # immutable library objects, so it survives resets unchanged.
        self._scoring_cache: Dict[object, object] = {}

    @property
    def scheduler_name(self) -> str:
        return "Molen"

    def reset(self) -> None:
        """Cold-start fabric, port and monitor for independent runs."""
        super().reset()
        self.monitor.reset()

    # -- SystemSimulator hooks ------------------------------------------------

    def _plan(
        self, trace: HotSpotTrace, available: Molecule
    ) -> Tuple[Sequence[str], Molecule, _MolenContext]:
        sis = self.library.subset(trace.si_names)
        expected = self.monitor.predict(trace.hot_spot, trace.si_names)
        if self._vector_active:
            selection = select_molecules_fast(
                # The effective budget shrinks when containers die.
                sis, expected, self.fabric.usable_acs, available=available,
                cache=self._scoring_cache,
            )
        else:
            selection = select_molecules(
                sis, expected, self.fabric.usable_acs, available=available
            )
        # Load order: most important SI first, whole molecules back to
        # back.  Atoms already on the fabric are reused.
        importance: List[Tuple[float, str]] = []
        for si_name, impl in selection.hardware_selection().items():
            si = self.library.get(si_name)
            gain = max(0, si.software_latency - impl.latency)
            importance.append((-(expected.get(si_name, 0.0) * gain), si_name))
        importance.sort()
        atom_sequence: List[str] = []
        virtual = available
        for _, si_name in importance:
            impl = selection.implementations[si_name]
            missing = virtual.missing(impl.atoms)
            atom_sequence.extend(missing.iter_atom_instances())
            virtual = virtual | impl.atoms
        context = _MolenContext(selection=selection, expected=dict(expected))
        return atom_sequence, selection.meta, context

    def _decision_event(
        self,
        trace: HotSpotTrace,
        context: _MolenContext,
        cycle: int,
        atom_sequence: Sequence[str],
    ) -> SchedulerDecision:
        selection = tuple(
            sorted(
                (si_name, impl.name)
                for si_name, impl in
                context.selection.hardware_selection().items()
            )
        )
        return SchedulerDecision(
            cycle=cycle,
            hot_spot=trace.hot_spot,
            scheduler=self.scheduler_name,
            selection=selection,
            steps=(),
            atom_sequence=tuple(atom_sequence),
        )

    def _dispatch_memo_key(
        self, trace: HotSpotTrace, context: _MolenContext
    ) -> Optional[object]:
        # Molen dispatch depends on the availability *and* the hot
        # spot's chosen implementations, so the latter join the key.
        chosen = tuple(
            context.selection.implementations[si_name].name
            for si_name in trace.si_names
        )
        return (trace.si_names, chosen)

    def _dispatch_preference(
        self, si_name: str, context: _MolenContext
    ) -> Sequence[MoleculeImpl]:
        # Mirrors _impl_for: the chosen implementation when fully
        # loaded, otherwise the base-ISA trap.
        impl = context.selection.implementations[si_name]
        if impl.is_software:
            return [impl]
        return [impl, self.library.get(si_name).software]

    def _impl_for(
        self, si_name: str, available: Molecule, context: _MolenContext
    ) -> MoleculeImpl:
        impl = context.selection.implementations[si_name]
        if impl.is_software or impl.atoms <= available:
            return impl
        # Not fully reconfigured yet: execute via the base-ISA trap —
        # partial availability buys nothing in a Molen-like system.
        return self.library.get(si_name).software

    def _finish(self, trace: HotSpotTrace, context: _MolenContext) -> None:
        self.monitor.update(trace.hot_spot, trace.totals())
