"""Behavioural system simulators.

Three system models replay a :class:`~repro.workload.trace.Workload`
against the fabric substrate:

* :class:`RisppSimulator` — the paper's system: gradual molecule
  upgrades on an as-soon-as-available basis, driven by a pluggable atom
  scheduler (FSFR/ASF/SJF/HEF/...),
* :class:`MolenSimulator` — the Molen/OneChip-like state of the art:
  one fixed implementation per SI, software execution until that
  implementation is fully reconfigured,
* :func:`simulate_software` — the zero-AC base processor.

All simulators account cycles identically (same traces, same trap model,
same reconfiguration port), so their totals are directly comparable —
which is exactly how the paper produced Figure 7 and Table 2.
"""

from __future__ import annotations

from .results import LatencyEvent, Segment, SimulationResult
from .engine import SystemSimulator
from .rispp import RisppSimulator
from .molen import MolenSimulator
from .software import simulate_software
from .timeline import bin_executions, latency_steps
from .stats import SIBreakdown, RunBreakdown, analyse_run

__all__ = [
    "LatencyEvent",
    "Segment",
    "SimulationResult",
    "SystemSimulator",
    "RisppSimulator",
    "MolenSimulator",
    "simulate_software",
    "bin_executions",
    "latency_steps",
    "SIBreakdown",
    "RunBreakdown",
    "analyse_run",
]
