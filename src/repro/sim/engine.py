"""Shared execution engine of the system simulators.

The engine owns the clock.  For every hot-spot invocation it

1. charges the Run-Time-Manager entry overhead,
2. asks the concrete simulator for a *plan* (which atoms to load, in
   which order, and which atoms the plan retains),
3. hands the load sequence to the reconfiguration port, and
4. replays the trace's iterations against the evolving atom
   availability.

Step 4 exploits that SI latencies are piecewise constant: they only
change when the port completes an atom.  The engine therefore advances
*analytically* from completion to completion — one numpy cumulative sum
finds how many whole iterations fit before the next completion — instead
of ticking cycle by cycle.  An iteration that straddles a completion
finishes at its old latencies (the pipeline cannot retarget a running
SI), and the upgrade takes effect from the next iteration on.

This makes a full 140-frame, 20-AC-count, 4-scheduler sweep run in
seconds while remaining exact for the modelled semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.molecule import Molecule
from ..core.si import MoleculeImpl, SILibrary
from ..errors import SimulationError
from ..fabric.atom import AtomRegistry
from ..fabric.eviction import EvictionPolicy
from ..fabric.fabric import Fabric
from ..fabric.faults import FaultModel, NoFaults, RetryPolicy
from ..fabric.reconfig import ReconfigPort
from ..isa.processor import BaseProcessor
from ..obs.events import (
    DegradedEnter,
    DegradedExit,
    HotSpotSwitch,
    RunEnd,
    RunStart,
    SchedulerDecision,
    SIUpgrade,
)
from ..obs.tracer import NULL_TRACER, Tracer
from ..workload.trace import HotSpotTrace, Workload
from .results import LatencyEvent, Segment, SimulationResult
from .vector import VectorExecutor

if TYPE_CHECKING:
    # Annotation-only: the deterministic core touches obs solely via
    # the tracer protocol; the metrics registry is injected by callers.
    from ..obs.metrics import MetricsRegistry

__all__ = ["SystemSimulator", "ENGINES"]

#: Valid values of the ``engine`` parameter.
ENGINES = frozenset({"reference", "vector", "auto"})


class SystemSimulator(ABC):
    """Base class of the RISPP and Molen system simulators.

    Parameters
    ----------
    library:
        The application's SI library.
    registry:
        Atom registry (must induce the library's atom space).
    num_acs:
        Number of Atom Containers.
    processor:
        Base-processor cost model (defaults apply when omitted).
    record_segments:
        Record per-span execution segments and latency-change events for
        the Figure 2 / Figure 8 style analyses (costs memory; off by
        default).
    fault_model:
        Fault injection for the reconfiguration fabric (perfect fabric
        when omitted); see :mod:`repro.fabric.faults`.
    retry_policy:
        How the reconfiguration port reacts to transient load failures.
    tracer:
        Observability sink for the typed run events (hot-spot switches,
        scheduler decisions, atom loads, SI upgrades, degraded segments);
        see :mod:`repro.obs`.  Defaults to the no-op tracer, in which
        case no event objects are ever constructed.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        wall-clock scheduler-decision timings and end-of-run gauges.
        Wall-clock readings never enter the (deterministic) event log.
    engine:
        Trace-replay engine: ``"reference"`` (the per-span loop below),
        ``"vector"`` (the numpy fast path of :mod:`repro.sim.vector`),
        or ``"auto"``.  The two engines are bit-identical, so the choice
        never changes results — only wall-clock speed.  The vector path
        emits no trace events, so ``"vector"`` and ``"auto"`` silently
        fall back to the reference engine whenever a tracer is enabled.
        Systems can force the same fallback via :meth:`_forces_reference`
        — the RISPP simulator does when cross-hot-spot prefetching is
        active, since speculative loads cross the phase boundaries the
        vector executor batches over.
    """

    #: Reported in results as the system column.
    system_name: str = "abstract"

    def __init__(
        self,
        library: SILibrary,
        registry: AtomRegistry,
        num_acs: int,
        processor: Optional[BaseProcessor] = None,
        record_segments: bool = False,
        eviction_policy: Optional[EvictionPolicy] = None,
        fault_model: Optional[FaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        engine: str = "reference",
    ):
        if registry.space != library.space:
            raise SimulationError(
                "atom registry and SI library use different atom spaces"
            )
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of {sorted(ENGINES)}"
            )
        self.library = library
        self.registry = registry
        self.num_acs = int(num_acs)
        self.processor = processor if processor is not None else BaseProcessor()
        self.record_segments = bool(record_segments)
        self.fault_model = (
            fault_model if fault_model is not None else NoFaults()
        )
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.engine = engine
        #: True while a run is replaying through the vector executor;
        #: planners may route to the array-friendly scoring fast path.
        self._vector_active = False
        self.fabric = Fabric(
            registry,
            num_acs,
            eviction_policy=eviction_policy,
            tracer=self.tracer,
        )
        self.port = ReconfigPort(
            self.fabric,
            fault_model=self.fault_model,
            retry_policy=self.retry_policy,
            tracer=self.tracer,
        )
        self._sis = {si.name: si for si in library}
        self._degraded_cycles = 0
        self._obs_last_latency: Dict[str, int] = {}
        self._obs_degraded = False
        #: Cross-hot-spot prefetch accounting (stays zero unless a
        #: concrete system speculates; see :mod:`repro.sim.rispp`).
        self._prefetch_issued = 0
        self._prefetch_hits = 0
        self._prefetch_wasted = 0
        self._prefetch_wasted_bus_cycles = 0

    # -- hooks for the concrete systems ------------------------------------------

    @property
    @abstractmethod
    def scheduler_name(self) -> str:
        """Label for the result tables (scheduler or system variant)."""

    @abstractmethod
    def _plan(
        self, trace: HotSpotTrace, available: Molecule
    ) -> Tuple[Sequence[str], Molecule, object]:
        """Decide the atom loads for a hot-spot entry.

        Returns ``(atom_sequence, retained, context)``: the load order
        for the port, the meta-molecule of atoms the plan keeps (the
        eviction reference), and an opaque context passed back to
        :meth:`_impl_for` and :meth:`_finish`.
        """

    @abstractmethod
    def _impl_for(
        self, si_name: str, available: Molecule, context: object
    ) -> MoleculeImpl:
        """The implementation an SI execution uses right now."""

    def _finish(self, trace: HotSpotTrace, context: object) -> None:
        """Hook called after a hot-spot invocation completed."""

    def _forces_reference(self) -> bool:
        """Whether this system requires the reference trace-replay loop.

        Mirrors the tracer fallback: ``"vector"`` and ``"auto"`` resolve
        to the reference engine when this returns True.  The base
        implementation never forces; RISPP does while cross-hot-spot
        prefetching is active.
        """
        return False

    def _after_plan(
        self, trace: HotSpotTrace, context: object, now: int
    ) -> None:
        """Hook called right after the plan was handed to the port.

        Concrete systems may issue speculative work for a predicted next
        phase here (the port queue now reflects the committed plan).
        """

    def _run_epilogue(self, now: int) -> None:
        """Hook called once after the last trace, before run teardown.

        Lets systems settle cross-phase state (e.g. classify leftover
        speculative loads) so the accounting invariants hold per run.
        """

    def _dispatch_memo_key(
        self, trace: HotSpotTrace, context: object
    ) -> Optional[object]:
        """Hashable key under which :meth:`_impl_for` may be memoized.

        The vector executor caches dispatch results per (key, fabric
        availability).  A system whose dispatch depends on more than the
        availability must fold that extra state into the key; ``None``
        (the safe default) disables memoization entirely — dispatch is
        then recomputed through the reference :meth:`_impl_for` on every
        span.
        """
        return None

    def _dispatch_preference(
        self, si_name: str, context: object
    ) -> Optional[Sequence[MoleculeImpl]]:
        """Static preference order replicating :meth:`_impl_for`.

        When a system's dispatch is equivalent to "the first
        implementation of this ordered list whose atoms are loaded", it
        can return that list here and the vector executor resolves
        dispatch-memo misses with one array feasibility scan instead of
        per-SI molecule walks.  The list must contain at least one
        always-feasible entry (a software implementation).  ``None``
        (the default) keeps the reference :meth:`_impl_for` miss path.
        """
        return None

    def _decision_event(
        self,
        trace: HotSpotTrace,
        context: object,
        cycle: int,
        atom_sequence: Sequence[str],
    ) -> SchedulerDecision:
        """Build the trace event describing a scheduler decision.

        The base implementation records the chosen load order only;
        systems with richer planning state (RISPP's candidate evaluation
        with HEF benefit terms) override this to attach it.
        """
        return SchedulerDecision(
            cycle=cycle,
            hot_spot=trace.hot_spot,
            scheduler=self.scheduler_name,
            selection=(),
            steps=(),
            atom_sequence=tuple(atom_sequence),
        )

    # -- main loop -------------------------------------------------------------------

    def _resolve_engine(self) -> str:
        """The engine a run starting now would actually use.

        ``"vector"`` and ``"auto"`` resolve to the vector executor only
        when no tracer is attached: the vector path constructs no event
        objects (that is where its speed comes from), so traced runs
        always take the reference loop.  Systems that speculate across
        phase boundaries (:meth:`_forces_reference`) fall back the same
        way.  Results are bit-identical either way.
        """
        if (
            self.engine == "reference"
            or self.tracer.enabled
            or self._forces_reference()
        ):
            return "reference"
        return "vector"

    def reset(self) -> None:
        """Cold-start the fabric, port and fault model (fresh run).

        Containers killed by permanent faults are repaired (a fresh run
        models a fresh board) and the fault model replays the identical
        fault schedule, so repeated runs reproduce bit-for-bit.
        """
        self.fabric.reset()
        self.fault_model.reset()
        self.retry_policy.reset()
        self.port = ReconfigPort(
            self.fabric,
            fault_model=self.fault_model,
            retry_policy=self.retry_policy,
            tracer=self.tracer,
        )
        self._degraded_cycles = 0
        self._obs_last_latency = {}
        self._obs_degraded = False
        self._prefetch_issued = 0
        self._prefetch_hits = 0
        self._prefetch_wasted = 0
        self._prefetch_wasted_bus_cycles = 0

    def run(self, workload: Workload) -> SimulationResult:
        """Replay ``workload`` and return the accounted result."""
        self.reset()
        vexec: Optional[VectorExecutor] = None
        if self._resolve_engine() == "vector":
            vexec = VectorExecutor(self)
        self._vector_active = vexec is not None
        now = 0
        hot_spot_cycles: Dict[str, int] = {}
        frame_cycles: Dict[int, int] = {}
        si_totals: Dict[str, int] = {}
        segments: Optional[List[Segment]] = [] if self.record_segments else None
        latency_events: Optional[List[LatencyEvent]] = (
            [] if self.record_segments else None
        )
        last_latency: Dict[str, int] = {}
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                RunStart(
                    cycle=0,
                    system=self.system_name,
                    scheduler=self.scheduler_name,
                    num_acs=self.num_acs,
                    workload_name=workload.name,
                )
            )

        for trace_index, trace in enumerate(workload):
            start = now
            # Drain completions up to the switch cycle first so the event
            # log stays non-decreasing in cycle across trace boundaries.
            self.port.advance_to(now)
            if tracer.enabled:
                tracer.emit(
                    HotSpotSwitch(
                        cycle=now,
                        hot_spot=trace.hot_spot,
                        frame_index=trace.frame_index,
                        trace_index=trace_index,
                        entry_overhead=self.processor.hot_spot_entry_overhead,
                    )
                )
            now += self.processor.hot_spot_entry_overhead
            self.port.advance_to(now)
            available = self.fabric.available()
            if self.metrics is not None:
                with self.metrics.timer("scheduler.decision_seconds"):
                    atom_sequence, retained, context = self._plan(
                        trace, available
                    )
            else:
                atom_sequence, retained, context = self._plan(trace, available)
            if tracer.enabled:
                tracer.emit(
                    self._decision_event(trace, context, now, atom_sequence)
                )
            self.port.replace_queue(list(atom_sequence), retained, now)
            self._after_plan(trace, context, now)
            if vexec is not None:
                now = vexec.execute(
                    trace, context, now, segments, latency_events,
                    last_latency,
                )
            else:
                now = self._execute(
                    trace, context, now, segments, latency_events,
                    last_latency,
                )
            for si_name, count in trace.totals().items():
                si_totals[si_name] = si_totals.get(si_name, 0) + count
            self._finish(trace, context)
            elapsed = now - start
            hot_spot_cycles[trace.hot_spot] = (
                hot_spot_cycles.get(trace.hot_spot, 0) + elapsed
            )
            frame_cycles[trace.frame_index] = (
                frame_cycles.get(trace.frame_index, 0) + elapsed
            )

        self._vector_active = False
        self._run_epilogue(now)
        if tracer.enabled:
            tracer.emit(RunEnd(cycle=now, total_cycles=now))
        if self.metrics is not None:
            self.metrics.gauge("run.total_cycles").set(now)
            self.metrics.gauge("bus.busy_cycles").set(self.port.busy_cycles)
            self.metrics.gauge("bus.busy_fraction").set(
                min(1.0, self.port.busy_cycles / now) if now else 0.0
            )
            self.metrics.gauge("loads.completed").set(
                self.port.loads_completed
            )
            self.metrics.gauge("fabric.evictions").set(
                self.fabric.num_evictions
            )
        per_frame = [
            frame_cycles[idx] for idx in sorted(frame_cycles)
        ]
        return SimulationResult(
            system=self.system_name,
            scheduler_name=self.scheduler_name,
            num_acs=self.num_acs,
            workload_name=workload.name,
            total_cycles=now,
            hot_spot_cycles=hot_spot_cycles,
            per_frame_cycles=per_frame,
            si_executions=si_totals,
            loads_started=self.port.loads_started,
            loads_completed=self.port.loads_completed,
            evictions=self.fabric.num_evictions,
            loads_failed=self.port.loads_failed,
            loads_retried=self.port.loads_retried,
            loads_abandoned=self.port.loads_abandoned,
            dead_containers=self.fabric.dead_count,
            degraded_cycles=self._degraded_cycles,
            bus_busy_cycles=self.port.busy_cycles,
            prefetch_issued=self._prefetch_issued,
            prefetch_hits=self._prefetch_hits,
            prefetch_wasted=self._prefetch_wasted,
            prefetch_wasted_bus_cycles=self._prefetch_wasted_bus_cycles,
            segments=segments,
            latency_events=latency_events,
        )

    # -- trace replay -------------------------------------------------------------------

    def _effective_latencies(
        self, trace: HotSpotTrace, available: Molecule, context: object
    ) -> Tuple[np.ndarray, Molecule]:
        """Per-SI effective latency vector and the atoms in active use."""
        latencies = np.empty(len(trace.si_names), dtype=np.float64)
        used = available.space.zero()
        for col, si_name in enumerate(trace.si_names):
            impl = self._impl_for(si_name, available, context)
            latencies[col] = self.processor.si_execution_cycles(impl)
            if not impl.is_software:
                used = used | impl.atoms
        return latencies, used

    def _execute(
        self,
        trace: HotSpotTrace,
        context: object,
        now: int,
        segments: Optional[List[Segment]],
        latency_events: Optional[List[LatencyEvent]],
        last_latency: Dict[str, int],
    ) -> int:
        counts = trace.counts
        n_iterations = trace.iterations
        overhead = trace.overhead_per_iteration
        i = 0
        tracer = self.tracer
        while i < n_iterations:
            self.port.advance_to(now)
            available = self.fabric.available()
            latvec, used = self._effective_latencies(trace, available, context)
            if tracer.enabled:
                for col, si_name in enumerate(trace.si_names):
                    lat = int(latvec[col])
                    if self._obs_last_latency.get(si_name) != lat:
                        self._obs_last_latency[si_name] = lat
                        impl = self._impl_for(si_name, available, context)
                        tracer.emit(
                            SIUpgrade(
                                cycle=now,
                                si_name=si_name,
                                molecule=impl.name,
                                latency=lat,
                                software=impl.is_software,
                            )
                        )
            if latency_events is not None:
                for col, si_name in enumerate(trace.si_names):
                    lat = int(latvec[col])
                    if last_latency.get(si_name) != lat:
                        last_latency[si_name] = lat
                        latency_events.append(
                            LatencyEvent(cycle=now, si_name=si_name, latency=lat)
                        )
            remaining = counts[i:]
            per_iteration = remaining @ latvec + overhead
            cumulative = np.cumsum(per_iteration)
            next_event = self.port.next_completion()
            if next_event is None or now + cumulative[-1] <= next_event:
                k = n_iterations - i
            else:
                budget = next_event - now
                # Iterations strictly before the completion, plus the one
                # in flight when it lands (old latencies apply to it).
                k = int(np.searchsorted(cumulative, budget, side="left")) + 1
                k = min(k, n_iterations - i)
            span = int(cumulative[k - 1])
            # Degraded operation: the fabric lost containers, or the
            # port is burning its time budget on a retry.  Summed up so
            # experiments can quantify the fault-induced slowdown.
            degraded = self.fabric.is_degraded or self.port.is_retrying
            if tracer.enabled and degraded != self._obs_degraded:
                self._obs_degraded = degraded
                tracer.emit(
                    DegradedEnter(cycle=now)
                    if degraded
                    else DegradedExit(cycle=now)
                )
            if degraded:
                self._degraded_cycles += span
            if segments is not None:
                executed = remaining[:k].sum(axis=0)
                segments.append(
                    Segment(
                        t0=now,
                        t1=now + span,
                        frame_index=trace.frame_index,
                        hot_spot=trace.hot_spot,
                        si_names=trace.si_names,
                        executions=tuple(int(e) for e in executed),
                        latencies=tuple(int(lat) for lat in latvec),
                        degraded=degraded,
                    )
                )
            now += span
            i += k
            if not used.is_zero:
                self.fabric.touch_atoms(used, now)
        return now
