"""Post-run statistics: where did the cycles go?

Breaks a recorded simulation down into the quantities the paper reasons
about: how long each SI executed in software vs hardware, how busy the
reconfiguration port was, and how much execution time the trap path cost
— the "inefficiency" the gradual-upgrade architecture removes.

Requires a run with ``record_segments=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..calibration import RECONFIG_CYCLES_PER_ATOM
from ..core.si import SILibrary
from ..errors import SimulationError
from .results import SimulationResult

__all__ = ["SIBreakdown", "RunBreakdown", "analyse_run"]


@dataclass
class SIBreakdown:
    """Per-SI execution split between software and hardware."""

    si_name: str
    software_executions: int = 0
    hardware_executions: int = 0
    software_cycles: int = 0
    hardware_cycles: int = 0

    @property
    def total_executions(self) -> int:
        return self.software_executions + self.hardware_executions

    @property
    def software_fraction(self) -> float:
        """Fraction of executions that went through the trap path."""
        total = self.total_executions
        return self.software_executions / total if total else 0.0

    @property
    def cycles(self) -> int:
        return self.software_cycles + self.hardware_cycles


@dataclass
class RunBreakdown:
    """Aggregate cycle accounting of one simulator run."""

    result: SimulationResult
    per_si: Dict[str, SIBreakdown]
    si_cycles: int
    overhead_cycles: int
    port_busy_cycles: int

    @property
    def port_utilisation(self) -> float:
        """Fraction of the run the reconfiguration port was writing."""
        if not self.result.total_cycles:
            return 0.0
        return min(1.0, self.port_busy_cycles / self.result.total_cycles)

    @property
    def software_cycle_fraction(self) -> float:
        """Share of all SI cycles spent on the trap path — the quantity
        gradual upgrading minimises."""
        total = sum(b.cycles for b in self.per_si.values())
        if not total:
            return 0.0
        software = sum(b.software_cycles for b in self.per_si.values())
        return software / total

    @property
    def degraded_fraction(self) -> float:
        """Share of the run spent in degraded (fault-impacted) mode."""
        return self.result.degraded_fraction

    def summary(self) -> str:
        lines = [
            f"{self.result.system}/{self.result.scheduler_name} @ "
            f"{self.result.num_acs} ACs: "
            f"{self.result.total_mcycles:,.1f} Mcycles",
            f"  reconfiguration port busy {self.port_utilisation:6.1%} "
            f"of the run ({self.result.loads_completed} loads)",
            f"  SI cycles in software: {self.software_cycle_fraction:6.1%}",
        ]
        if self.result.had_faults:
            lines.append(
                f"  faults: {self.result.loads_failed} loads failed, "
                f"{self.result.loads_retried} retried, "
                f"{self.result.loads_abandoned} abandoned, "
                f"{self.result.dead_containers} dead ACs, "
                f"degraded {self.degraded_fraction:6.1%} of the run"
            )
        lines += [
            f"  {'SI':<10s}{'execs':>10s}{'sw execs':>10s}{'sw cycles %':>12s}",
        ]
        for name in sorted(self.per_si):
            b = self.per_si[name]
            share = (
                b.software_cycles / b.cycles if b.cycles else 0.0
            )
            lines.append(
                f"  {name:<10s}{b.total_executions:>10,}"
                f"{b.software_executions:>10,}{share:>11.1%}"
            )
        return "\n".join(lines)


def analyse_run(
    result: SimulationResult, library: SILibrary
) -> RunBreakdown:
    """Compute the cycle breakdown from a recorded run.

    Software executions are identified by their effective latency: a
    segment whose latency for an SI is at least the SI's software latency
    ran through the trap path (the recorded value includes the trap
    overhead).
    """
    if result.segments is None:
        raise SimulationError(
            "breakdown needs a run recorded with record_segments=True"
        )
    per_si: Dict[str, SIBreakdown] = {}
    si_cycles = 0
    for segment in result.segments:
        for name, executions, latency in zip(
            segment.si_names, segment.executions, segment.latencies
        ):
            if executions == 0:
                continue
            entry = per_si.setdefault(name, SIBreakdown(name))
            cycles = executions * latency
            si_cycles += cycles
            if latency >= library.get(name).software_latency:
                entry.software_executions += executions
                entry.software_cycles += cycles
            else:
                entry.hardware_executions += executions
                entry.hardware_cycles += cycles
    overhead = result.total_cycles - si_cycles
    port_busy = result.loads_completed * RECONFIG_CYCLES_PER_ATOM
    return RunBreakdown(
        result=result,
        per_si=per_si,
        si_cycles=si_cycles,
        overhead_cycles=max(0, overhead),
        port_busy_cycles=port_busy,
    )
