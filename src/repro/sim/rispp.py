"""The RISPP system simulator — gradual SI upgrades (the paper's system).

At every hot-spot entry the Run-Time Manager forecasts the SI execution
frequencies, selects molecules for the AC budget and lets the configured
atom scheduler order the loads.  During execution every SI uses the
fastest implementation whose atoms are loaded *right now* — molecules
become usable on an as-soon-as-available basis, which is the paper's
central architectural feature.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.molecule import Molecule
from ..core.monitor import ExecutionMonitor
from ..core.runtime import HotSpotPlan, RuntimeManager
from ..core.schedulers.base import AtomScheduler
from ..core.si import MoleculeImpl, SILibrary
from ..fabric.atom import AtomRegistry
from ..isa.processor import BaseProcessor
from ..obs.events import DecisionStep, SchedulerDecision
from ..workload.trace import HotSpotTrace
from .engine import SystemSimulator

__all__ = ["RisppSimulator"]


class RisppSimulator(SystemSimulator):
    """Behavioural model of the RISPP run-time system.

    Parameters
    ----------
    scheduler:
        The atom-scheduling strategy under evaluation.
    monitor:
        Execution-frequency forecaster; pass a monitor seeded with an
        offline profile for realistic first-frame behaviour.
    validate_schedules:
        Check every schedule against conditions (1)+(2) (slow; for tests).
    """

    system_name = "RISPP"

    def __init__(
        self,
        library: SILibrary,
        registry: AtomRegistry,
        scheduler: AtomScheduler,
        num_acs: int,
        processor: Optional[BaseProcessor] = None,
        monitor: Optional[ExecutionMonitor] = None,
        record_segments: bool = False,
        validate_schedules: bool = False,
        eviction_policy=None,
        fault_model=None,
        retry_policy=None,
        tracer=None,
        metrics=None,
        engine="reference",
    ):
        super().__init__(
            library,
            registry,
            num_acs,
            processor=processor,
            record_segments=record_segments,
            eviction_policy=eviction_policy,
            fault_model=fault_model,
            retry_policy=retry_policy,
            tracer=tracer,
            metrics=metrics,
            engine=engine,
        )
        self.runtime = RuntimeManager(
            library,
            scheduler,
            num_acs,
            monitor=monitor,
            validate_schedules=validate_schedules,
        )

    @property
    def scheduler_name(self) -> str:
        return self.runtime.scheduler.name

    def reset(self) -> None:
        """Cold-start fabric, port *and* the monitor's learned state, so
        repeated :meth:`run` calls are independent and reproducible."""
        super().reset()
        self.runtime.monitor.reset()

    # -- SystemSimulator hooks ------------------------------------------------

    def _plan(
        self, trace: HotSpotTrace, available: Molecule
    ) -> Tuple[Sequence[str], Molecule, HotSpotPlan]:
        plan = self.runtime.plan_hot_spot(
            trace.hot_spot,
            trace.si_names,
            available,
            # Plan against the *effective* budget: permanently failed
            # containers must not be counted on.
            num_acs=self.fabric.usable_acs,
            fast=self._vector_active,
        )
        # Retain what the plan targets *plus* what is currently loaded and
        # still part of the target — eviction only touches true leftovers.
        return plan.schedule.atom_sequence(), plan.selection.meta, plan

    def _impl_for(
        self, si_name: str, available: Molecule, context: HotSpotPlan
    ) -> MoleculeImpl:
        return self.runtime.dispatch(si_name, available)

    def _dispatch_memo_key(
        self, trace: HotSpotTrace, context: HotSpotPlan
    ) -> Optional[object]:
        # RISPP dispatch is context-free (fastest molecule available
        # right now), so memoizing on the SI tuple + availability is
        # exact — and the same fabric states recur across frames.
        return trace.si_names

    def _dispatch_preference(
        self, si_name: str, context: HotSpotPlan
    ) -> Sequence[MoleculeImpl]:
        # fastest_available scans the molecules keeping the strictly
        # best (latency, determinant, name) seen so far, starting from
        # software — i.e. the first *feasible* entry of this stable sort
        # (software listed first, so it wins exact key ties).
        si = self.library.get(si_name)
        return sorted(
            [si.software, *si.molecules],
            key=lambda impl: (impl.latency, impl.determinant, impl.name),
        )

    def _decision_event(
        self,
        trace: HotSpotTrace,
        context: HotSpotPlan,
        cycle: int,
        atom_sequence: Sequence[str],
    ) -> SchedulerDecision:
        """Attach the candidate evaluation behind the chosen schedule.

        Each upgrade step carries the two terms every scheduler's
        profitability view reduces to: the benefit numerator
        ``expected × (latency_before − latency_after)`` and the
        denominator ``|a ⊖ o|`` (atoms still to load) — for HEF these
        are exactly the cross-multiplied comparison terms.
        """
        steps = []
        for step in context.schedule.steps:
            si_name = step.impl.si_name
            expected = context.expected.get(si_name, 0.0)
            steps.append(
                DecisionStep(
                    si_name=si_name,
                    molecule=step.impl.name,
                    num_loads=step.num_loads,
                    latency_before=step.latency_before,
                    latency_after=min(step.latency_before, step.impl.latency),
                    benefit_num=expected * step.improvement,
                    benefit_den=step.num_loads,
                )
            )
        selection = tuple(
            sorted(
                (si_name, impl.name)
                for si_name, impl in
                context.selection.hardware_selection().items()
            )
        )
        return SchedulerDecision(
            cycle=cycle,
            hot_spot=trace.hot_spot,
            scheduler=self.scheduler_name,
            selection=selection,
            steps=tuple(steps),
            atom_sequence=tuple(atom_sequence),
        )

    def _finish(self, trace: HotSpotTrace, context: HotSpotPlan) -> None:
        self.runtime.finish_hot_spot(trace.hot_spot, trace.totals())
