"""The RISPP system simulator — gradual SI upgrades (the paper's system).

At every hot-spot entry the Run-Time Manager forecasts the SI execution
frequencies, selects molecules for the AC budget and lets the configured
atom scheduler order the loads.  During execution every SI uses the
fastest implementation whose atoms are loaded *right now* — molecules
become usable on an as-soon-as-available basis, which is the paper's
central architectural feature.

Cross-hot-spot prefetching
--------------------------
With the PREFETCH scheduler
(:class:`~repro.core.schedulers.prefetch.PrefetchScheduler`) the
simulator additionally speculates across phase boundaries: after each
plan is handed to the port, the monitor's transition predictor names the
likely next hot spot; if its confidence clears the scheduler's
threshold, a speculative plan for that phase is computed and up to
``budget`` of its atom loads are queued on the port's speculative lane
(idle-window only, evicting at most stale atoms, never retried).  At the
next switch
the speculation is settled: atoms the materialised phase's plan wants
are hits (their loads are simply no longer needed — overhead hidden),
everything else is wasted and accounted, including the bus cycles it
burned.  Speculation forces the reference trace-replay engine, exactly
like an attached tracer does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.molecule import Molecule
from ..core.monitor import ExecutionMonitor
from ..core.runtime import HotSpotPlan, RuntimeManager
from ..core.schedulers.base import AtomScheduler
from ..core.schedulers.prefetch import PrefetchScheduler
from ..core.si import MoleculeImpl, SILibrary
from ..fabric.atom import AtomRegistry
from ..fabric.reconfig import SpeculationReport
from ..isa.processor import BaseProcessor
from ..obs.events import (
    DecisionStep,
    PrefetchHit,
    PrefetchIssued,
    PrefetchWasted,
    SchedulerDecision,
)
from ..workload.trace import HotSpotTrace
from .engine import SystemSimulator

__all__ = ["RisppSimulator"]


class RisppSimulator(SystemSimulator):
    """Behavioural model of the RISPP run-time system.

    Parameters
    ----------
    scheduler:
        The atom-scheduling strategy under evaluation.
    monitor:
        Execution-frequency forecaster; pass a monitor seeded with an
        offline profile for realistic first-frame behaviour.
    validate_schedules:
        Check every schedule against conditions (1)+(2) (slow; for tests).
    """

    system_name = "RISPP"

    def __init__(
        self,
        library: SILibrary,
        registry: AtomRegistry,
        scheduler: AtomScheduler,
        num_acs: int,
        processor: Optional[BaseProcessor] = None,
        monitor: Optional[ExecutionMonitor] = None,
        record_segments: bool = False,
        validate_schedules: bool = False,
        eviction_policy=None,
        fault_model=None,
        retry_policy=None,
        tracer=None,
        metrics=None,
        engine="reference",
    ):
        super().__init__(
            library,
            registry,
            num_acs,
            processor=processor,
            record_segments=record_segments,
            eviction_policy=eviction_policy,
            fault_model=fault_model,
            retry_policy=retry_policy,
            tracer=tracer,
            metrics=metrics,
            engine=engine,
        )
        self.runtime = RuntimeManager(
            library,
            scheduler,
            num_acs,
            monitor=monitor,
            validate_schedules=validate_schedules,
        )
        #: Previous trace's hot spot (feeds the transition predictor).
        self._prev_hot_spot: Optional[str] = None
        #: The hot spot the outstanding speculation was issued for, and
        #: the predictor confidence it was issued at.
        self._spec_predicted: Optional[str] = None
        self._spec_confidence = 0.0
        #: Speculation report cancelled during :meth:`_plan`, awaiting
        #: classification in :meth:`_after_plan` (which knows ``now``).
        self._spec_report: Optional[SpeculationReport] = None

    @property
    def scheduler_name(self) -> str:
        return self.runtime.scheduler.name

    @property
    def _speculating(self) -> bool:
        """Whether the configured scheduler wants speculative prefetch."""
        scheduler = self.runtime.scheduler
        return (
            isinstance(scheduler, PrefetchScheduler) and scheduler.speculates
        )

    def _forces_reference(self) -> bool:
        # Speculative loads cross the phase boundaries the vector
        # executor batches over; mirror the tracer fallback.
        return self._speculating

    def reset(self) -> None:
        """Cold-start fabric, port *and* the monitor's learned state, so
        repeated :meth:`run` calls are independent and reproducible."""
        super().reset()
        self.runtime.monitor.reset()
        self._prev_hot_spot = None
        self._spec_predicted = None
        self._spec_confidence = 0.0
        self._spec_report = None

    # -- SystemSimulator hooks ------------------------------------------------

    def _plan(
        self, trace: HotSpotTrace, available: Molecule
    ) -> Tuple[Sequence[str], Molecule, HotSpotPlan]:
        monitor = self.runtime.monitor
        if self._prev_hot_spot is not None:
            monitor.record_transition(self._prev_hot_spot, trace.hot_spot)
        self._prev_hot_spot = trace.hot_spot
        # Cancel the previous phase's speculation *before* planning: an
        # in-flight speculative load is re-labelled normal here, so the
        # replace_queue dedup can let its completion serve the new plan.
        # Classification waits for _after_plan, which knows the cycle.
        if self._speculating:
            self._spec_report = self.port.cancel_speculative()
        plan = self.runtime.plan_hot_spot(
            trace.hot_spot,
            trace.si_names,
            available,
            # Plan against the *effective* budget: permanently failed
            # containers must not be counted on.
            num_acs=self.fabric.usable_acs,
            fast=self._vector_active,
        )
        # Retain what the plan targets *plus* what is currently loaded and
        # still part of the target — eviction only touches true leftovers.
        return plan.schedule.atom_sequence(), plan.selection.meta, plan

    # -- speculative prefetch --------------------------------------------------

    def _settle_speculation(
        self,
        report: SpeculationReport,
        actual_hot_spot: Optional[str],
        retained: Optional[Molecule],
        cycle: int,
    ) -> None:
        """Classify one phase's speculative loads as hits or waste.

        ``actual_hot_spot``/``retained`` describe the phase that
        materialised (``None`` at run end — everything started is then
        wasted as ``run_end``).  Hits are counted count-aware: per atom
        type at most as many hits as the new selection's meta-molecule
        retains.  Bus cycles of every started-but-not-hit load are added
        to the wasted-bus account (dropped loads never touched the bus).
        """
        predicted = self._spec_predicted
        tracer = self.tracer
        hits: Dict[str, int] = {}
        eligible: List[str] = list(report.completed)
        if report.in_flight is not None:
            eligible.append(report.in_flight)
        if (
            retained is not None
            and actual_hot_spot is not None
            and predicted == actual_hot_spot
        ):
            for atom_type in eligible:
                wanted = retained.count(atom_type)
                if hits.get(atom_type, 0) < wanted:
                    hits[atom_type] = hits.get(atom_type, 0) + 1
                    self._prefetch_hits += 1
                    if tracer.enabled:
                        tracer.emit(
                            PrefetchHit(
                                cycle=cycle,
                                hot_spot=actual_hot_spot,
                                atom_type=atom_type,
                            )
                        )
            surplus_reason = "surplus"
        else:
            surplus_reason = (
                "run_end" if actual_hot_spot is None else "mispredicted"
            )
        taken: Dict[str, int] = {}
        for atom_type in eligible:
            if taken.get(atom_type, 0) < hits.get(atom_type, 0):
                taken[atom_type] = taken.get(atom_type, 0) + 1
                continue
            self._waste(atom_type, surplus_reason, cycle, bus_cost=True)
        run_end = actual_hot_spot is None
        for atom_type in report.failed:
            self._waste(
                atom_type,
                "run_end" if run_end else "failed",
                cycle,
                bus_cost=True,
            )
        for atom_type in report.dropped:
            self._waste(atom_type, "dropped", cycle, bus_cost=False)

    def _waste(
        self, atom_type: str, reason: str, cycle: int, bus_cost: bool
    ) -> None:
        self._prefetch_wasted += 1
        if bus_cost:
            self._prefetch_wasted_bus_cycles += (
                self.registry.reconfig_cycles(atom_type)
            )
        if self.tracer.enabled:
            self.tracer.emit(
                PrefetchWasted(
                    cycle=cycle, atom_type=atom_type, reason=reason
                )
            )

    def _after_plan(
        self, trace: HotSpotTrace, context: HotSpotPlan, now: int
    ) -> None:
        """Settle the previous speculation, then issue the next one."""
        if not self._speculating:
            return
        report = self._spec_report
        self._spec_report = None
        if report is not None and report.issued:
            self._settle_speculation(
                report, trace.hot_spot, context.selection.meta, now
            )
        self._spec_predicted = None
        self._spec_confidence = 0.0
        scheduler = self.runtime.scheduler
        assert isinstance(scheduler, PrefetchScheduler)
        monitor = self.runtime.monitor
        prediction = monitor.predict_next(trace.hot_spot)
        if prediction is None:
            return
        next_hot_spot, confidence = prediction
        if confidence < scheduler.confidence:
            return
        si_names = monitor.si_names_for(next_hot_spot)
        if not si_names:
            # The predicted phase never ran — its SI mix is unknown, so
            # there is nothing sensible to speculate on yet.
            return
        spec_plan = self.runtime.plan_hot_spot(
            next_hot_spot,
            si_names,
            self.fabric.available(),
            num_acs=self.fabric.usable_acs,
        )
        atoms = list(spec_plan.schedule.atom_sequence())[: scheduler.budget]
        if not atoms:
            return
        self._spec_predicted = next_hot_spot
        self._spec_confidence = confidence
        self._prefetch_issued += len(atoms)
        if self.tracer.enabled:
            for atom_type in atoms:
                self.tracer.emit(
                    PrefetchIssued(
                        cycle=now,
                        hot_spot=trace.hot_spot,
                        predicted_hot_spot=next_hot_spot,
                        atom_type=atom_type,
                        confidence=confidence,
                    )
                )
        self.port.enqueue_speculative(atoms, now)

    def _run_epilogue(self, now: int) -> None:
        """Settle speculation the run finished on (everything wasted)."""
        if not self._speculating:
            return
        report = self.port.cancel_speculative()
        if report.issued:
            self._settle_speculation(report, None, None, now)

    def _impl_for(
        self, si_name: str, available: Molecule, context: HotSpotPlan
    ) -> MoleculeImpl:
        return self.runtime.dispatch(si_name, available)

    def _dispatch_memo_key(
        self, trace: HotSpotTrace, context: HotSpotPlan
    ) -> Optional[object]:
        # RISPP dispatch is context-free (fastest molecule available
        # right now), so memoizing on the SI tuple + availability is
        # exact — and the same fabric states recur across frames.
        return trace.si_names

    def _dispatch_preference(
        self, si_name: str, context: HotSpotPlan
    ) -> Sequence[MoleculeImpl]:
        # fastest_available scans the molecules keeping the strictly
        # best (latency, determinant, name) seen so far, starting from
        # software — i.e. the first *feasible* entry of this stable sort
        # (software listed first, so it wins exact key ties).
        si = self.library.get(si_name)
        return sorted(
            [si.software, *si.molecules],
            key=lambda impl: (impl.latency, impl.determinant, impl.name),
        )

    def _decision_event(
        self,
        trace: HotSpotTrace,
        context: HotSpotPlan,
        cycle: int,
        atom_sequence: Sequence[str],
    ) -> SchedulerDecision:
        """Attach the candidate evaluation behind the chosen schedule.

        Each upgrade step carries the two terms every scheduler's
        profitability view reduces to: the benefit numerator
        ``expected × (latency_before − latency_after)`` and the
        denominator ``|a ⊖ o|`` (atoms still to load) — for HEF these
        are exactly the cross-multiplied comparison terms.
        """
        steps = []
        for step in context.schedule.steps:
            si_name = step.impl.si_name
            expected = context.expected.get(si_name, 0.0)
            steps.append(
                DecisionStep(
                    si_name=si_name,
                    molecule=step.impl.name,
                    num_loads=step.num_loads,
                    latency_before=step.latency_before,
                    latency_after=min(step.latency_before, step.impl.latency),
                    benefit_num=expected * step.improvement,
                    benefit_den=step.num_loads,
                )
            )
        selection = tuple(
            sorted(
                (si_name, impl.name)
                for si_name, impl in
                context.selection.hardware_selection().items()
            )
        )
        return SchedulerDecision(
            cycle=cycle,
            hot_spot=trace.hot_spot,
            scheduler=self.scheduler_name,
            selection=selection,
            steps=tuple(steps),
            atom_sequence=tuple(atom_sequence),
        )

    def _finish(self, trace: HotSpotTrace, context: HotSpotPlan) -> None:
        self.runtime.finish_hot_spot(trace.hot_spot, trace.totals())
