"""Vectorized trace replay — the ``engine="vector"`` fast path.

The reference executor (:meth:`repro.sim.engine.SystemSimulator._execute`)
already advances analytically from port completion to port completion,
but it rebuilds the per-SI latency vector from scratch on every span:
one :meth:`fastest_available` lattice walk per SI per span, plus a fresh
cumulative sum over the remaining iterations.  On paper-scale sweeps
those per-span rebuilds dominate the profile.

This module replays the identical span algebra over precomputed
struct-of-arrays views:

* per trace, the execution counts are folded once into int64 row-prefix
  sums ``P`` (shape ``(iterations + 1, num_sis)``), so any span's work is
  a difference of two rows;
* per latency vector, the cumulative-cycles curve
  ``W[t] = P[t] @ latencies + t * overhead`` is built once and cached —
  a span boundary becomes a single ``searchsorted`` on ``W``;
* per (dispatch key, availability) pair, the SI dispatch — which runs
  the *reference* :meth:`_impl_for` on a cache miss — is memoized, so
  the lattice walks happen once per distinct fabric state instead of
  once per span.

All accounting stays in int64 (the reference's float64 intermediates are
integer-valued and exact below 2**53, so the integer math reproduces
them bit-for-bit), and this module is division-free by construction —
RL005 scans it alongside the schedulers.

The vector path is only ever active with the tracer disabled (see
:meth:`SystemSimulator._resolve_engine`): it emits no events, and
untraced runs are bit-identical to the reference by the differential
harness in ``tests/test_vector_differential.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..core.molecule import Molecule
from ..workload.trace import HotSpotTrace
from .results import LatencyEvent, Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.si import MoleculeImpl
    from .engine import SystemSimulator

__all__ = ["VectorExecutor"]

#: (latencies per SI, atoms in active use or None).
_DispatchEntry = Tuple[Tuple[int, ...], Optional[Molecule]]

#: Stacked dispatch preference tables: all SIs' preference rows in one
#: matrix (rows_all, rank, segment offsets, cycles per row, impls).
_PrefTable = Tuple[
    np.ndarray, np.ndarray, np.ndarray, List[int], List["MoleculeImpl"]
]


class _TraceArrays:
    """Per-trace prefix sums and the latency-vector cycle-curve cache."""

    __slots__ = ("prefix", "steps", "w_cache")

    def __init__(self, trace: HotSpotTrace) -> None:
        counts = np.asarray(trace.counts, dtype=np.int64)
        iterations = trace.iterations
        num_sis = len(trace.si_names)
        self.prefix = np.zeros((iterations + 1, num_sis), dtype=np.int64)
        if iterations:
            np.cumsum(counts, axis=0, out=self.prefix[1:])
        self.steps = (
            np.arange(iterations + 1, dtype=np.int64)
            * int(trace.overhead_per_iteration)
        )
        #: latency tuple -> W curve (cycles consumed after t iterations),
        #: as (ndarray for searchsorted, plain list for scalar reads —
        #: numpy scalar indexing is an order of magnitude slower than a
        #: list index on the span hot path).
        self.w_cache: Dict[Tuple[int, ...], Tuple[np.ndarray, List[int]]] = {}

    def cycles_curve(
        self, latencies: Tuple[int, ...]
    ) -> Tuple[np.ndarray, List[int]]:
        curve = self.w_cache.get(latencies)
        if curve is None:
            lat_arr = np.array(latencies, dtype=np.int64)
            arr = self.prefix @ lat_arr + self.steps
            curve = (arr, arr.tolist())
            self.w_cache[latencies] = curve
        return curve


class VectorExecutor:
    """Span-exact replay of one run's traces over cached arrays.

    One executor lives for one :meth:`SystemSimulator.run` call; its
    dispatch memo persists across traces (RISPP dispatch depends only on
    the SI set and the fabric content, which recur heavily across
    frames).
    """

    def __init__(self, sim: "SystemSimulator") -> None:
        self._sim = sim
        self._space = sim.library.space
        self._atom_pos = {
            name: i for i, name in enumerate(self._space.names)
        }
        self._num_atoms = self._space.size
        # Keyed by id(); the stored trace reference keeps the object
        # alive so the id cannot be recycled while the cache holds it.
        self._traces: Dict[int, Tuple[HotSpotTrace, _TraceArrays]] = {}
        # Two-level memo: dispatch key -> availability -> entry.  The
        # outer lookup happens once per trace replay, so the per-span
        # cost is one small-tuple hash.
        self._memo: Dict[object, Dict[Tuple[int, ...], _DispatchEntry]] = {}
        # Per dispatch key: the stacked preference tables, or None when
        # the system keeps the reference miss path (see
        # SystemSimulator._dispatch_preference).
        self._pref: Dict[object, Optional[_PrefTable]] = {}
        self._avail_ver: Optional[int] = None
        self._avail_cache: Tuple[int, ...] = ()

    # -- fabric snapshot ---------------------------------------------------

    def _availability(self) -> Tuple[int, ...]:
        """Loaded-atom counts, cheaper than building a Molecule.

        The fabric bumps ``_loaded_ver`` on every loaded-set edge, so it
        is an exact version stamp: between spans with the same stamp the
        previous snapshot is reused, and on a change only the per-type
        groups (not the container array) are folded.
        """
        fabric = self._sim.fabric
        ver = fabric._loaded_ver
        if ver == self._avail_ver:
            return self._avail_cache
        snapshot = tuple(fabric._avail_counts)
        self._avail_ver = ver
        self._avail_cache = snapshot
        return snapshot

    def _dispatch(
        self,
        trace: HotSpotTrace,
        context: object,
        tables: Optional[_PrefTable],
        avail_counts: Tuple[int, ...],
    ) -> _DispatchEntry:
        sim = self._sim
        latencies: List[int] = []
        if tables is not None:
            # First feasible row of each SI's preference segment — by
            # construction the same implementation _impl_for returns.
            # The rows are preference-ordered, so "first feasible" is
            # the minimum preference rank among feasible rows.
            rows_all, rank, offsets, cycles, _impls = tables
            avail_arr = np.array(avail_counts, dtype=np.int64)
            feasible = (rows_all <= avail_arr).all(axis=1)
            masked = np.where(feasible, rank, len(cycles))
            first = np.minimum.reduceat(masked, offsets)
            # Molecule union is the component-wise max, and software
            # rows are all-zero, so the atoms in active use fall out of
            # one reduction over the chosen rows.
            used_counts = rows_all[first].max(axis=0).tolist()
            lat_tuple = tuple(cycles[j] for j in first.tolist())
            entry: _DispatchEntry = (
                lat_tuple,
                Molecule._make(self._space, tuple(used_counts))
                if any(used_counts)
                else None,
            )
        else:
            # Fallback: run the reference dispatch so the vector path
            # can never disagree with it.
            available = Molecule(self._space, avail_counts)
            used = self._space.zero()
            for si_name in trace.si_names:
                impl = sim._impl_for(si_name, available, context)
                latencies.append(
                    int(sim.processor.si_execution_cycles(impl))
                )
                if not impl.is_software:
                    used = used | impl.atoms
            entry = (
                tuple(latencies),
                None if used.is_zero else used,
            )
        return entry

    def _pref_tables(
        self, trace: HotSpotTrace, context: object
    ) -> Optional[_PrefTable]:
        """Stacked array views of the system's dispatch preferences.

        Requires every column to provide a preference list containing an
        always-feasible (zero-atom) entry; otherwise returns None and
        dispatch misses keep the reference path.
        """
        sim = self._sim
        impls_all: List["MoleculeImpl"] = []
        offsets: List[int] = []
        for si_name in trace.si_names:
            prefs = sim._dispatch_preference(si_name, context)
            if prefs is None or not any(
                impl.atoms.is_zero for impl in prefs
            ):
                return None
            offsets.append(len(impls_all))
            impls_all.extend(prefs)
        rows_all = np.array(
            [impl.atoms.counts for impl in impls_all], dtype=np.int64
        ).reshape(len(impls_all), self._num_atoms)
        cycles = [
            int(sim.processor.si_execution_cycles(impl))
            for impl in impls_all
        ]
        return (
            rows_all,
            np.arange(len(impls_all), dtype=np.int64),
            np.array(offsets, dtype=np.intp),
            cycles,
            impls_all,
        )

    # -- span replay -------------------------------------------------------

    def execute(
        self,
        trace: HotSpotTrace,
        context: object,
        now: int,
        segments: Optional[List[Segment]],
        latency_events: Optional[List[LatencyEvent]],
        last_latency: Dict[str, int],
    ) -> int:
        """Replay one trace; same contract as the reference ``_execute``."""
        sim = self._sim
        port = sim.port
        fabric = sim.fabric
        iterations = trace.iterations
        entry = self._traces.get(id(trace))
        if entry is None:
            arrays = _TraceArrays(trace)
            self._traces[id(trace)] = (trace, arrays)
        else:
            arrays = entry[1]
        memo_key = sim._dispatch_memo_key(trace, context)
        memo: Optional[Dict[Tuple[int, ...], _DispatchEntry]] = None
        tables: Optional[_PrefTable] = None
        if memo_key is not None:
            memo = self._memo.setdefault(memo_key, {})
            if memo_key in self._pref:
                tables = self._pref[memo_key]
            else:
                tables = self._pref_tables(trace, context)
                self._pref[memo_key] = tables
        i = 0
        while i < iterations:
            port.advance_to(now)
            avail_counts = self._availability()
            entry = None if memo is None else memo.get(avail_counts)
            if entry is None:
                entry = self._dispatch(trace, context, tables, avail_counts)
                if memo is not None:
                    memo[avail_counts] = entry
            lat_tuple, used = entry
            curve_arr, curve_list = arrays.cycles_curve(lat_tuple)
            if latency_events is not None:
                for col, si_name in enumerate(trace.si_names):
                    lat = lat_tuple[col]
                    if last_latency.get(si_name) != lat:
                        last_latency[si_name] = lat
                        latency_events.append(
                            LatencyEvent(
                                cycle=now, si_name=si_name, latency=lat
                            )
                        )
            in_flight = port._in_flight is not None
            next_event = port._busy_until if in_flight else None
            curve_i = curve_list[i]
            total = curve_list[iterations] - curve_i
            if next_event is None or now + total <= next_event:
                k = iterations - i
            else:
                # Iterations strictly before the completion, plus the one
                # in flight when it lands (old latencies apply to it):
                # the first t > i with curve[t] - curve[i] >= budget.
                target = curve_i + (next_event - now)
                k = int(curve_arr.searchsorted(target, side="left")) - i
                k = min(k, iterations - i)
            span = curve_list[i + k] - curve_i
            degraded = fabric._dead > 0 or (
                in_flight and port._in_flight_failures > 0
            )
            if degraded:
                sim._degraded_cycles += span
            if segments is not None:
                executed = arrays.prefix[i + k] - arrays.prefix[i]
                segments.append(
                    Segment(
                        t0=now,
                        t1=now + span,
                        frame_index=trace.frame_index,
                        hot_spot=trace.hot_spot,
                        si_names=trace.si_names,
                        executions=tuple(int(e) for e in executed),
                        latencies=lat_tuple,
                        degraded=degraded,
                    )
                )
            now += span
            i += k
            if used is not None:
                fabric.touch_atoms(used, now)
        return now
